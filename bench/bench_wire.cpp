// Wire fast-path benchmark and allocation gate (docs/wire_fastpath.md).
//
// Measures ns/op and heap allocations per message for the control-channel
// hot path: nested-message encode (legacy per-sub-message encoders vs. the
// arena/backpatch path), envelope decode (fresh vs. decode_into reuse),
// frame + reassemble, the full encode->frame->reassemble->decode loop, and
// ingest->apply through a standalone ShardCore over sim transports.
//
// Allocations are counted by a global operator-new hook, so the numbers are
// exact, deterministic, and independent of machine speed -- which is why
// tools/check.sh gates on them (not on ns/op):
//
//   bench_wire --check=bench/wire_alloc_baseline.txt   # exit 1 on regression
//   bench_wire [BENCH_wire.json]                       # report + JSON
//
// The legacy encode baseline replicates the pre-change encoding (a fresh
// WireEncoder per sub-message, copied into the parent via field_message,
// body vector + Envelope::encode) and is verified byte-identical to the
// arena path before anything is timed.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "controller/master.h"
#include "net/framing.h"
#include "net/sim_transport.h"
#include "proto/messages.h"
#include "util/logging.h"

// ------------------------------------------------- counting operator new --
// Every allocation path funnels through these overrides; the counter is the
// ground truth the --check gate compares against the checked-in baseline.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace flexran;
using Clock = std::chrono::steady_clock;

double ns_per_op(std::uint64_t ops, Clock::time_point start, Clock::time_point end) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count();
  return static_cast<double>(ns) / static_cast<double>(ops);
}

// ------------------------------------------------------------- workload --

constexpr std::size_t kUes = 16;
constexpr std::size_t kRsrpPerUe = 2;
constexpr std::uint32_t kXid = 77;
constexpr std::uint64_t kEncodeIters = 20'000;
constexpr std::uint64_t kLoopIters = 20'000;
constexpr std::uint64_t kWarmup = 200;
constexpr std::uint64_t kIngestIters = 2'000;

proto::StatsReply make_reply() {
  proto::StatsReply reply;
  reply.request_id = 1;
  reply.subframe = 123456;
  for (std::size_t i = 0; i < kUes; ++i) {
    proto::UeStatsReport ue;
    ue.rnti = static_cast<lte::Rnti>(70 + i);
    ue.bsr_bytes = {0, 1500, 0, static_cast<std::uint32_t>(200 * i)};
    ue.phr_db = 17;
    ue.wb_cqi = static_cast<std::uint8_t>(3 + i % 12);
    ue.rlc_queue_bytes = static_cast<std::uint32_t>(4096 + 17 * i);
    ue.dl_bytes_delivered = 100'000 + 3 * i;
    ue.ul_bytes_received = 40'000 + i;
    ue.ul_buffer_bytes = static_cast<std::uint32_t>(300 * i);
    for (std::size_t m = 0; m < kRsrpPerUe; ++m) {
      ue.rsrp.push_back({static_cast<lte::CellId>(1 + m), -90.0 - static_cast<double>(i)});
    }
    reply.ue_reports.push_back(std::move(ue));
  }
  proto::CellStatsReport cell;
  cell.cell_id = 1;
  cell.dl_prbs_in_use = 42;
  cell.ul_prbs_in_use = 11;
  cell.active_ues = kUes;
  reply.cell_reports.push_back(cell);
  return reply;
}

// Pre-change nested encode, kept verbatim as the in-bench baseline: one
// fresh WireEncoder per sub-message, copied into its parent via
// field_message, then an owned body vector copied into Envelope::encode.
// Field order matches src/proto/messages.cpp so output stays byte-identical.
void legacy_encode_ue_report(proto::WireEncoder& parent, int field,
                             const proto::UeStatsReport& r) {
  proto::WireEncoder enc;
  enc.field_varint(1, r.rnti);
  for (auto bsr : r.bsr_bytes) enc.field_varint(2, bsr);
  enc.field_svarint(3, r.phr_db);
  enc.field_varint(4, r.wb_cqi);
  enc.field_varint(5, r.rlc_queue_bytes);
  if (r.pending_harq != 0) enc.field_varint(6, r.pending_harq);
  if (r.dl_bytes_delivered != 0) enc.field_varint(7, r.dl_bytes_delivered);
  if (r.ul_bytes_received != 0) enc.field_varint(8, r.ul_bytes_received);
  if (r.wb_cqi_protected != 0) enc.field_varint(9, r.wb_cqi_protected);
  if (r.ul_buffer_bytes != 0) enc.field_varint(11, r.ul_buffer_bytes);
  for (const auto& m : r.rsrp) {
    proto::WireEncoder sub;
    sub.field_varint(1, m.cell_id);
    sub.field_svarint(2, std::llround(m.rsrp_dbm * 100.0));
    enc.field_message(10, sub);
  }
  parent.field_message(field, enc);
}

std::vector<std::uint8_t> legacy_encode(const proto::StatsReply& reply) {
  proto::WireEncoder body;
  body.field_varint(1, reply.request_id);
  body.field_svarint(2, reply.subframe);
  for (const auto& r : reply.ue_reports) legacy_encode_ue_report(body, 3, r);
  for (const auto& c : reply.cell_reports) {
    proto::WireEncoder enc;
    enc.field_varint(1, c.cell_id);
    enc.field_double(2, c.noise_interference_dbm);
    enc.field_varint(3, c.dl_prbs_in_use);
    enc.field_varint(4, c.ul_prbs_in_use);
    enc.field_varint(5, c.active_ues);
    body.field_message(4, enc);
  }
  proto::Envelope envelope;
  envelope.type = proto::MessageType::stats_reply;
  envelope.xid = kXid;
  envelope.body = body.take();
  return envelope.encode();
}

// --------------------------------------------------------------- results --

struct Results {
  double encode_legacy_ns = 0.0;
  double encode_arena_ns = 0.0;
  double encode_speedup = 0.0;
  double encode_arena_allocs = 0.0;
  double decode_fresh_ns = 0.0;
  double decode_into_ns = 0.0;
  double decode_into_allocs = 0.0;
  double frame_ns = 0.0;
  double frame_allocs = 0.0;
  double loop_ns = 0.0;
  double loop_allocs = 0.0;
  double ingest_ns = 0.0;
  double ingest_allocs = 0.0;
  std::size_t wire_bytes = 0;
};

bool verify_byte_identity(const proto::StatsReply& reply) {
  const auto legacy = legacy_encode(reply);
  proto::WireEncoder enc;
  proto::Envelope header;
  header.xid = kXid;
  proto::encode_envelope(enc, header, reply);
  const auto arena = enc.bytes();
  if (legacy.size() != arena.size() ||
      !std::equal(legacy.begin(), legacy.end(), arena.begin())) {
    std::fprintf(stderr, "FATAL: arena encode is not byte-identical to the legacy path "
                         "(%zu vs %zu bytes)\n", arena.size(), legacy.size());
    return false;
  }
  const auto packed = proto::pack(reply, kXid);
  if (packed.size() != legacy.size() ||
      !std::equal(packed.begin(), packed.end(), legacy.begin())) {
    std::fprintf(stderr, "FATAL: pack() diverged from the legacy encoding\n");
    return false;
  }
  return true;
}

Results run_bench() {
  Results res;
  const proto::StatsReply reply = make_reply();

  // ---- nested-message encode: legacy vs arena ----
  {
    volatile std::size_t sink = 0;
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kEncodeIters; ++i) sink = legacy_encode(reply).size();
    auto t1 = Clock::now();
    res.encode_legacy_ns = ns_per_op(kEncodeIters, t0, t1);
    (void)sink;
  }
  {
    proto::WireEncoder enc;
    proto::Envelope header;
    header.xid = kXid;
    volatile std::size_t sink = 0;
    for (std::uint64_t i = 0; i < kWarmup; ++i) {
      enc.clear();
      proto::encode_envelope(enc, header, reply);
    }
    const auto allocs0 = g_allocs.load();
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kEncodeIters; ++i) {
      enc.clear();
      proto::encode_envelope(enc, header, reply);
      sink = enc.size();
    }
    auto t1 = Clock::now();
    res.encode_arena_ns = ns_per_op(kEncodeIters, t0, t1);
    res.encode_arena_allocs =
        static_cast<double>(g_allocs.load() - allocs0) / static_cast<double>(kEncodeIters);
    res.wire_bytes = enc.size();
    (void)sink;
  }
  res.encode_speedup = res.encode_legacy_ns / res.encode_arena_ns;

  const auto wire = legacy_encode(reply);

  // ---- decode: fresh structs vs decode_into reuse ----
  {
    volatile std::uint32_t sink = 0;
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kLoopIters; ++i) {
      auto envelope = proto::Envelope::decode(wire);
      auto decoded = proto::StatsReply::decode_body(envelope->body);
      sink = decoded->request_id;
    }
    auto t1 = Clock::now();
    res.decode_fresh_ns = ns_per_op(kLoopIters, t0, t1);
    (void)sink;
  }
  {
    proto::Envelope envelope;
    proto::StatsReply decoded;
    volatile std::uint32_t sink = 0;
    for (std::uint64_t i = 0; i < kWarmup; ++i) {
      (void)proto::Envelope::decode_into(wire, envelope);
      (void)proto::StatsReply::decode_body_into(envelope.body, decoded);
    }
    const auto allocs0 = g_allocs.load();
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kLoopIters; ++i) {
      (void)proto::Envelope::decode_into(wire, envelope);
      (void)proto::StatsReply::decode_body_into(envelope.body, decoded);
      sink = decoded.request_id;
    }
    auto t1 = Clock::now();
    res.decode_into_ns = ns_per_op(kLoopIters, t0, t1);
    res.decode_into_allocs =
        static_cast<double>(g_allocs.load() - allocs0) / static_cast<double>(kLoopIters);
    (void)sink;
  }

  // ---- frame + reassemble (4 frames batched per feed, like a socket wake) --
  {
    constexpr std::uint64_t kBatch = 4;
    util::ByteBuffer framed;
    net::FrameAssembler assembler;
    std::uint64_t frames = 0;
    auto on_frame = [&frames](std::span<const std::uint8_t>) { ++frames; };
    auto once = [&] {
      framed.clear();
      for (std::uint64_t b = 0; b < kBatch; ++b) net::frame_into(framed, wire);
      (void)assembler.feed(framed.contents(), on_frame);
    };
    for (std::uint64_t i = 0; i < kWarmup; ++i) once();
    const auto allocs0 = g_allocs.load();
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kLoopIters / kBatch; ++i) once();
    auto t1 = Clock::now();
    const std::uint64_t messages = (kLoopIters / kBatch) * kBatch;
    res.frame_ns = ns_per_op(messages, t0, t1);
    res.frame_allocs =
        static_cast<double>(g_allocs.load() - allocs0) / static_cast<double>(messages);
    if (frames == 0) std::printf("unreachable\n");
  }

  // ---- full wire loop: encode -> frame -> reassemble -> decode ----
  {
    proto::WireEncoder enc;
    proto::Envelope header;
    header.xid = kXid;
    util::ByteBuffer framed;
    net::FrameAssembler assembler;
    proto::Envelope rx;
    proto::StatsReply decoded;
    std::uint64_t received = 0;
    // Materialize the FrameFn once: constructing a std::function from a
    // multi-capture lambda on every feed() call would itself allocate.
    const net::FrameAssembler::FrameFn on_frame = [&](std::span<const std::uint8_t> payload) {
      (void)proto::Envelope::decode_into(payload, rx);
      (void)proto::StatsReply::decode_body_into(rx.body, decoded);
      ++received;
    };
    auto once = [&] {
      enc.clear();
      proto::encode_envelope(enc, header, reply);
      framed.clear();
      net::frame_into(framed, enc.bytes());
      (void)assembler.feed(framed.contents(), on_frame);
    };
    for (std::uint64_t i = 0; i < kWarmup; ++i) once();
    const auto allocs0 = g_allocs.load();
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kLoopIters; ++i) once();
    auto t1 = Clock::now();
    res.loop_ns = ns_per_op(kLoopIters, t0, t1);
    res.loop_allocs =
        static_cast<double>(g_allocs.load() - allocs0) / static_cast<double>(kLoopIters);
    if (received == 0) std::printf("unreachable\n");
  }

  // ---- ingest -> apply through a standalone ShardCore ----
  {
    sim::Simulator sim;
    ctrl::MasterConfig config;
    config.auto_configure = false;
    config.echo_period_cycles = 0;
    ctrl::ShardCore core(sim, config);
    auto pair = net::make_sim_transport_pair(sim);
    core.add_agent(*pair.a);

    proto::Hello hello;
    hello.enb_id = 1;
    hello.name = "bench";
    (void)pair.b->send(net::TrafficClass::session, proto::pack(hello, 1));
    sim.run();
    core.run_cycle();

    const auto send_one = [&] {
      (void)pair.b->send(net::TrafficClass::stats, wire);
      sim.run();
      core.run_cycle();
    };
    for (std::uint64_t i = 0; i < kWarmup; ++i) send_one();
    const auto allocs0 = g_allocs.load();
    auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kIngestIters; ++i) send_one();
    auto t1 = Clock::now();
    res.ingest_ns = ns_per_op(kIngestIters, t0, t1);
    res.ingest_allocs =
        static_cast<double>(g_allocs.load() - allocs0) / static_cast<double>(kIngestIters);
  }

  return res;
}

// ------------------------------------------------------------ check mode --

std::map<std::string, double> load_baseline(const std::string& path) {
  std::map<std::string, double> baseline;
  std::ifstream in(path);
  std::string key;
  double value = 0.0;
  while (in >> key) {
    if (key.empty() || key[0] == '#') {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (in >> value) baseline[key] = value;
  }
  return baseline;
}

int check_against(const Results& res, const std::string& path) {
  const auto baseline = load_baseline(path);
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_wire --check: no baseline entries in %s\n", path.c_str());
    return 1;
  }
  const std::map<std::string, double> measured = {
      {"encode_arena_allocs_per_msg", res.encode_arena_allocs},
      {"decode_into_allocs_per_msg", res.decode_into_allocs},
      {"frame_reassemble_allocs_per_msg", res.frame_allocs},
      {"wire_loop_allocs_per_msg", res.loop_allocs},
  };
  int failures = 0;
  for (const auto& [key, limit] : baseline) {
    auto it = measured.find(key);
    if (it == measured.end()) {
      std::fprintf(stderr, "bench_wire --check: unknown baseline key %s\n", key.c_str());
      ++failures;
      continue;
    }
    if (it->second > limit + 1e-9) {
      std::fprintf(stderr,
                   "bench_wire --check: %s regressed: %.4f allocs/msg > baseline %.4f\n",
                   key.c_str(), it->second, limit);
      ++failures;
    } else {
      std::printf("bench_wire --check: %-34s %.4f <= %.4f ok\n", key.c_str(), it->second,
                  limit);
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Logger::instance().set_level(util::LogLevel::error);

  std::string check_path;
  std::string json_path = "BENCH_wire.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--check=", 0) == 0) {
      check_path = arg.substr(std::strlen("--check="));
    } else {
      json_path = arg;
    }
  }

  const proto::StatsReply reply = make_reply();
  if (!verify_byte_identity(reply)) return 1;

  const Results res = run_bench();

  if (!check_path.empty()) return check_against(res, check_path);

  flexran::bench::print_header("Wire fast path: ns/op and allocations per message");
  flexran::bench::print_note(
      "StatsReply with 16 UE reports (2 RSRP entries each) + 1 cell report.\n"
      "Legacy = pre-change nested encode (fresh encoder per sub-message,\n"
      "field_message copies, owned body vector); arena = reused encoder with\n"
      "length-prefix backpatching. Outputs verified byte-identical.");
  std::printf("\nwire size: %zu bytes\n\n", res.wire_bytes);
  std::printf("%-34s %10s %14s\n", "stage", "ns/op", "allocs/msg");
  std::printf("%-34s %10.1f %14s\n", "encode nested (legacy)", res.encode_legacy_ns, "-");
  std::printf("%-34s %10.1f %14.4f\n", "encode nested (arena)", res.encode_arena_ns,
              res.encode_arena_allocs);
  std::printf("%-34s %9.2fx %14s\n", "encode speedup", res.encode_speedup, "-");
  std::printf("%-34s %10.1f %14s\n", "decode (fresh structs)", res.decode_fresh_ns, "-");
  std::printf("%-34s %10.1f %14.4f\n", "decode (decode_into reuse)", res.decode_into_ns,
              res.decode_into_allocs);
  std::printf("%-34s %10.1f %14.4f\n", "frame + reassemble", res.frame_ns, res.frame_allocs);
  std::printf("%-34s %10.1f %14.4f\n", "wire loop (enc+frame+asm+dec)", res.loop_ns,
              res.loop_allocs);
  std::printf("%-34s %10.1f %14.4f\n", "ingest -> apply (ShardCore)", res.ingest_ns,
              res.ingest_allocs);

  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      ",\"wire_bytes\":%zu,"
      "\"encode\":{\"legacy_ns\":%.2f,\"arena_ns\":%.2f,\"speedup\":%.3f,"
      "\"arena_allocs_per_msg\":%.4f},"
      "\"decode\":{\"fresh_ns\":%.2f,\"into_ns\":%.2f,\"into_allocs_per_msg\":%.4f},"
      "\"frame\":{\"ns\":%.2f,\"allocs_per_msg\":%.4f},"
      "\"wire_loop\":{\"ns\":%.2f,\"allocs_per_msg\":%.4f},"
      "\"ingest_apply\":{\"ns\":%.2f,\"allocs_per_msg\":%.4f}}",
      res.wire_bytes, res.encode_legacy_ns, res.encode_arena_ns, res.encode_speedup,
      res.encode_arena_allocs, res.decode_fresh_ns, res.decode_into_ns, res.decode_into_allocs,
      res.frame_ns, res.frame_allocs, res.loop_ns, res.loop_allocs, res.ingest_ns,
      res.ingest_allocs);
  const std::string json =
      "{" +
      flexran::bench::json_header(
          "wire_fastpath", "ues=16 rsrp=2 cells=1 encode_iters=20000 loop_iters=20000") +
      buffer;
  std::ofstream out(json_path);
  out << json << "\n";
  std::printf("\n%s\nJSON written to %s\n", json.c_str(), json_path.c_str());
  return 0;
}
