// Overload degradation curve (docs/overload_protection.md): sweeps the
// offered statistics-report rate past the master's bounded ingest budget
// and measures what degrades. The graceful-degradation contract is that
// periodic statistics give way first (shed + throttled, RIB staleness
// rises) while the command/session path stays flat: the echo RTT -- echo
// is session-class traffic that is never shed -- must not move with the
// flood, and staleness must recover once the flood clears. Emits the
// results as JSON (one object on the last line) for scripted consumption.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "agent/reports.h"
#include "bench/bench_common.h"
#include "util/logging.h"

namespace {

using namespace flexran;

constexpr std::uint64_t kIngestMaxMessages = 32;
constexpr std::uint64_t kIngestMaxBytes = 16384;
constexpr std::uint32_t kFloodRequestIdBase = 0xF1000000u;

struct OverloadRun {
  int flood_regs = 0;
  double offered_msgs_per_s = 0.0;
  double delivered_msgs_per_s = 0.0;
  std::uint64_t ingest_shed = 0;
  std::uint64_t ingest_coalesced = 0;
  double shed_ratio = 0.0;
  std::uint64_t peak_queue_messages = 0;
  std::uint64_t peak_queue_bytes = 0;
  double staleness_mean_ttis = 0.0;
  std::int64_t staleness_max_ttis = 0;
  double staleness_post_ttis = 0.0;
  double rtt_mean_us = 0.0;
  std::uint64_t overload_transitions = 0;
  const char* final_state = "normal";
};

OverloadRun measure(int flood_regs) {
  constexpr double kWarmupS = 0.5;
  constexpr double kFloodS = 2.0;
  constexpr double kRecoveryS = 1.0;

  ctrl::MasterConfig master_config = scenario::per_tti_master_config(/*stats_period_ttis=*/2);
  master_config.overload.ingest.max_messages = kIngestMaxMessages;
  master_config.overload.ingest.max_bytes = kIngestMaxBytes;
  // Frequent echoes give a dense command-latency sample during the flood.
  master_config.echo_period_cycles = 20;
  scenario::Testbed testbed(std::move(master_config));

  scenario::EnbSpec spec = bench::basic_enb(1, "overload");
  spec.uplink.delay = sim::from_ms(2.0);
  spec.downlink.delay = sim::from_ms(2.0);
  scenario::Testbed::Enb& enb = testbed.add_enb(spec);
  const ctrl::AgentId agent_id = enb.agent_id;

  const auto rnti = testbed.add_ue(0, bench::fixed_cqi_ue(15));
  bench::saturate_dl(testbed, 0, rnti);

  struct Probe {
    bool armed = false;
    std::int64_t samples = 0;
    double staleness_sum = 0.0;
    std::int64_t staleness_max = 0;
    double rtt_sum = 0.0;
    std::int64_t rtt_samples = 0;
  } probe;
  testbed.on_tti([&](std::int64_t tti) {
    if (!probe.armed) return;
    const auto* node = testbed.master().rib().find_agent(agent_id);
    if (node == nullptr) return;
    const std::int64_t staleness = std::max<std::int64_t>(0, tti - node->last_subframe);
    ++probe.samples;
    probe.staleness_sum += static_cast<double>(staleness);
    probe.staleness_max = std::max(probe.staleness_max, staleness);
    if (node->rtt_estimate_us > 0) {
      probe.rtt_sum += node->rtt_estimate_us;
      ++probe.rtt_samples;
    }
  });

  testbed.run_seconds(kWarmupS);

  OverloadRun run;
  run.flood_regs = flood_regs;

  // The flood: rogue every-TTI full-flag registrations straight at the
  // agent's ReportsManager, same mechanism as the report_flood fault.
  const std::int64_t now_sf = enb.agent->api().current_subframe();
  for (int i = 0; i < flood_regs; ++i) {
    proto::StatsRequest request;
    request.request_id = kFloodRequestIdBase + static_cast<std::uint32_t>(i);
    request.mode = proto::ReportMode::periodic;
    request.periodicity_ttis = 1;
    request.flags = proto::stats_flags::kAll;
    enb.agent->reports().register_request(request, now_sf);
  }

  const std::uint64_t tx_before = enb.agent_side->messages_sent();
  const std::uint64_t rx_before = enb.master_side->messages_received();
  const std::uint64_t shed_before = testbed.master().ingest_shed();
  const std::uint64_t coalesced_before = testbed.master().ingest_coalesced();
  probe.armed = true;
  testbed.run_seconds(kFloodS);
  probe.armed = false;

  run.offered_msgs_per_s = (enb.agent_side->messages_sent() - tx_before) / kFloodS;
  run.delivered_msgs_per_s = (enb.master_side->messages_received() - rx_before) / kFloodS;
  run.ingest_shed = testbed.master().ingest_shed() - shed_before;
  run.ingest_coalesced = testbed.master().ingest_coalesced() - coalesced_before;
  const double arrived = run.delivered_msgs_per_s * kFloodS;
  run.shed_ratio = arrived > 0 ? static_cast<double>(run.ingest_shed) / arrived : 0.0;
  run.peak_queue_messages = testbed.master().pending_peak_messages();
  run.peak_queue_bytes = testbed.master().pending_peak_bytes();
  run.staleness_mean_ttis =
      probe.samples > 0 ? probe.staleness_sum / static_cast<double>(probe.samples) : 0.0;
  run.staleness_max_ttis = probe.staleness_max;
  run.rtt_mean_us =
      probe.rtt_samples > 0 ? probe.rtt_sum / static_cast<double>(probe.rtt_samples) : 0.0;

  // Clear the flood and verify staleness recovers.
  for (int i = 0; i < flood_regs; ++i) {
    enb.agent->reports().cancel_request(kFloodRequestIdBase + static_cast<std::uint32_t>(i));
  }
  Probe recovery;
  probe = recovery;
  probe.armed = true;
  testbed.run_seconds(kRecoveryS);
  run.staleness_post_ttis =
      probe.samples > 0 ? probe.staleness_sum / static_cast<double>(probe.samples) : 0.0;
  run.overload_transitions = testbed.master().overload_transitions();
  run.final_state = ctrl::to_string(testbed.master().overload_state());
  return run;
}

}  // namespace

int main() {
  flexran::util::Logger::instance().set_level(flexran::util::LogLevel::error);
  bench::print_header("Overload degradation: offered report rate vs what gives way");
  bench::print_note(
      "bounded master ingest (32 msgs / 16 KiB); a flood of rogue every-TTI\n"
      "full-flag reports is shed + throttled while the command path (echo\n"
      "RTT, session class) must stay flat and staleness must recover.");
  std::printf("\n%6s %12s %12s %8s %7s %10s %10s %10s %10s %8s\n", "flood",
              "offered/s", "delivered/s", "shed", "ratio", "stale avg", "stale max",
              "stale post", "RTT (us)", "state");

  std::vector<OverloadRun> runs;
  for (int flood_regs : {0, 10, 20, 40, 80}) {
    OverloadRun run = measure(flood_regs);
    std::printf("%6d %12.0f %12.0f %8llu %7.3f %10.2f %10lld %10.2f %10.1f %8s\n",
                run.flood_regs, run.offered_msgs_per_s, run.delivered_msgs_per_s,
                static_cast<unsigned long long>(run.ingest_shed), run.shed_ratio,
                run.staleness_mean_ttis, static_cast<long long>(run.staleness_max_ttis),
                run.staleness_post_ttis, run.rtt_mean_us, run.final_state);
    runs.push_back(run);
  }

  // Machine-readable result: one JSON object on the final line.
  std::string json =
      "{" +
      bench::json_header("overload_degradation",
                         "ingest=32msg/16KiB stats_period=2 flood=2s echo_period=20cyc") +
      ",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const OverloadRun& run = runs[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"flood_regs\":%d,\"offered_msgs_per_s\":%.0f,"
                  "\"delivered_msgs_per_s\":%.0f,\"ingest_shed\":%llu,"
                  "\"ingest_coalesced\":%llu,\"shed_ratio\":%.4f,"
                  "\"peak_queue_messages\":%llu,\"peak_queue_bytes\":%llu,"
                  "\"staleness_mean_ttis\":%.3f,\"staleness_max_ttis\":%lld,"
                  "\"staleness_post_ttis\":%.3f,\"rtt_mean_us\":%.2f,"
                  "\"overload_transitions\":%llu,\"final_state\":\"%s\"}",
                  i == 0 ? "" : ",", run.flood_regs, run.offered_msgs_per_s,
                  run.delivered_msgs_per_s, static_cast<unsigned long long>(run.ingest_shed),
                  static_cast<unsigned long long>(run.ingest_coalesced), run.shed_ratio,
                  static_cast<unsigned long long>(run.peak_queue_messages),
                  static_cast<unsigned long long>(run.peak_queue_bytes),
                  run.staleness_mean_ttis, static_cast<long long>(run.staleness_max_ttis),
                  run.staleness_post_ttis, run.rtt_mean_us,
                  static_cast<unsigned long long>(run.overload_transitions), run.final_state);
    json += buffer;
  }
  json += "]}";
  std::printf("%s\n", json.c_str());
  return 0;
}
