// Control-channel recovery benchmark (docs/fault_tolerance.md): partitions
// the control channel of a remotely scheduled cell, heals it, and measures
// how long the control plane takes to recover -- time from heal to the
// first applied remote DL MAC decision, and to the master declaring the
// session fully re-synced. Emits the results as JSON (one object on the
// last line) for scripted consumption.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/remote_scheduler.h"
#include "bench/bench_common.h"
#include "scenario/fault_injector.h"
#include "util/logging.h"

namespace {

using namespace flexran;

struct RecoveryRun {
  double partition_ms = 0.0;
  double heal_to_first_remote_decision_ms = -1.0;
  double heal_to_resync_ms = -1.0;
  bool fallback_activated = false;
  bool fallback_recovered = false;
  std::uint64_t requests_retried = 0;
  std::uint64_t requests_failed = 0;
  double dl_mbps_pre = 0.0;
  double dl_mbps_outage = 0.0;
  double dl_mbps_post = 0.0;
};

RecoveryRun measure(double partition_ms) {
  constexpr double kWarmupS = 1.0;
  constexpr double kSettleS = 1.5;
  constexpr sim::TimeUs kControlDelay = sim::from_ms(2.0);

  ctrl::MasterConfig master_config = scenario::per_tti_master_config(/*stats_period_ttis=*/2);
  master_config.agent_timeout_us = sim::from_ms(50.0);
  master_config.agent_disconnect_timeout_us = sim::from_ms(200.0);
  master_config.request_timeout_us = sim::from_ms(30.0);
  scenario::Testbed testbed(std::move(master_config));

  apps::RemoteSchedulerConfig app_config;
  app_config.schedule_ahead_sf = 8;
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>(app_config));

  scenario::EnbSpec spec = bench::basic_enb(1, "recovery");
  spec.agent.dl_scheduler = "remote";
  spec.agent.remote_fallback_ttis = 30;
  spec.agent.fallback_scheduler = "local_rr";
  spec.uplink.delay = kControlDelay;
  spec.downlink.delay = kControlDelay;
  scenario::Testbed::Enb& enb = testbed.add_enb(spec);

  const auto rnti_a = testbed.add_ue(0, bench::fixed_cqi_ue(15));
  const auto rnti_b = testbed.add_ue(0, bench::fixed_cqi_ue(9, /*attach_after=*/2));
  bench::saturate_dl(testbed, 0, rnti_a);
  bench::saturate_dl(testbed, 0, rnti_b);

  RecoveryRun run;
  run.partition_ms = partition_ms;

  // Recovery probe, armed at the heal instant by the fault timeline below.
  struct Probe {
    bool armed = false;
    sim::TimeUs heal_at = 0;
    std::uint64_t decisions_at_heal = 0;
    sim::TimeUs first_decision_at = -1;
    sim::TimeUs resynced_at = -1;
  } probe;
  agent::Agent* agent = enb.agent.get();
  const ctrl::AgentId agent_id = enb.agent_id;
  testbed.on_tti([&](std::int64_t) {
    if (!probe.armed) return;
    if (probe.first_decision_at < 0 &&
        agent->remote_decisions_applied() > probe.decisions_at_heal) {
      probe.first_decision_at = testbed.sim().now();
    }
    if (probe.resynced_at < 0) {
      const auto* node = testbed.master().rib().find_agent(agent_id);
      if (node != nullptr && node->state == ctrl::SessionState::up) {
        probe.resynced_at = testbed.sim().now();
      }
    }
  });

  auto delivered = [&] {
    return testbed.metrics().total_bytes(1, rnti_a, lte::Direction::downlink) +
           testbed.metrics().total_bytes(1, rnti_b, lte::Direction::downlink);
  };

  testbed.run_seconds(kWarmupS);
  const std::uint64_t bytes_warmup = delivered();

  enb.set_control_down(true);
  testbed.run_seconds(partition_ms / 1000.0);
  const std::uint64_t bytes_outage = delivered();
  run.fallback_activated = agent->fallback_activations() > 0;

  enb.set_control_down(false);
  probe.armed = true;
  probe.heal_at = testbed.sim().now();
  probe.decisions_at_heal = agent->remote_decisions_applied();
  testbed.run_seconds(kSettleS);
  const std::uint64_t bytes_post = delivered();

  if (probe.first_decision_at >= 0) {
    run.heal_to_first_remote_decision_ms =
        static_cast<double>(probe.first_decision_at - probe.heal_at) / 1000.0;
  }
  if (probe.resynced_at >= 0) {
    run.heal_to_resync_ms = static_cast<double>(probe.resynced_at - probe.heal_at) / 1000.0;
  }
  run.fallback_recovered = agent->fallback_recoveries() > 0;
  run.requests_retried = testbed.master().requests_retried();
  run.requests_failed = testbed.master().requests_failed();
  run.dl_mbps_pre = scenario::Metrics::mbps(bytes_warmup, kWarmupS);
  run.dl_mbps_outage =
      scenario::Metrics::mbps(bytes_outage - bytes_warmup, partition_ms / 1000.0);
  run.dl_mbps_post = scenario::Metrics::mbps(bytes_post - bytes_outage, kSettleS);
  return run;
}

}  // namespace

int main() {
  flexran::util::Logger::instance().set_level(flexran::util::LogLevel::error);
  using flexran::bench::print_header;
  print_header(
      "Control-channel recovery: partition heal -> first applied remote DL MAC config");
  std::printf("%14s %22s %16s %10s %10s %10s %10s\n", "partition(ms)", "first decision (ms)",
              "resync (ms)", "retries", "pre Mb/s", "out Mb/s", "post Mb/s");

  std::vector<RecoveryRun> runs;
  for (double partition_ms : {50.0, 150.0, 400.0, 800.0}) {
    RecoveryRun run = measure(partition_ms);
    std::printf("%14.0f %22.2f %16.2f %10llu %10.2f %10.2f %10.2f\n", run.partition_ms,
                run.heal_to_first_remote_decision_ms, run.heal_to_resync_ms,
                static_cast<unsigned long long>(run.requests_retried), run.dl_mbps_pre,
                run.dl_mbps_outage, run.dl_mbps_post);
    runs.push_back(run);
  }

  // Machine-readable result: one JSON object on the final line.
  std::string json =
      "{" +
      flexran::bench::json_header("control_channel_recovery",
                                  "control_delay=2ms stats_period=2 fallback=30ttis") +
      ",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RecoveryRun& run = runs[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"partition_ms\":%.0f,\"heal_to_first_remote_decision_ms\":%.3f,"
                  "\"heal_to_resync_ms\":%.3f,\"fallback_activated\":%s,"
                  "\"fallback_recovered\":%s,\"requests_retried\":%llu,"
                  "\"requests_failed\":%llu,\"dl_mbps_pre\":%.3f,\"dl_mbps_outage\":%.3f,"
                  "\"dl_mbps_post\":%.3f}",
                  i == 0 ? "" : ",", run.partition_ms, run.heal_to_first_remote_decision_ms,
                  run.heal_to_resync_ms, run.fallback_activated ? "true" : "false",
                  run.fallback_recovered ? "true" : "false",
                  static_cast<unsigned long long>(run.requests_retried),
                  static_cast<unsigned long long>(run.requests_failed), run.dl_mbps_pre,
                  run.dl_mbps_outage, run.dl_mbps_post);
    json += buffer;
  }
  json += "]}";
  std::printf("%s\n", json.c_str());
  return 0;
}
