// Control-channel recovery benchmark (docs/fault_tolerance.md): partitions
// the control channel of a remotely scheduled cell, heals it, and measures
// how long the control plane takes to recover -- time from heal to the
// first applied remote DL MAC decision, and to the master declaring the
// session fully re-synced. Emits the results as JSON (one object on the
// last line) for scripted consumption.
//
// Second part ("Master restart"): crashes and restarts the master itself
// over a growing fleet and measures time-to-recovery -- restart to the
// readiness barrier dropping -- cold (RIB rebuilt from full re-syncs)
// versus warm (delta re-sync from a checkpoint). Writes the sweep to
// BENCH_master_recovery.json.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "controller/checkpoint_sink.h"

#include "apps/remote_scheduler.h"
#include "bench/bench_common.h"
#include "scenario/fault_injector.h"
#include "util/logging.h"

namespace {

using namespace flexran;

struct RecoveryRun {
  double partition_ms = 0.0;
  double heal_to_first_remote_decision_ms = -1.0;
  double heal_to_resync_ms = -1.0;
  bool fallback_activated = false;
  bool fallback_recovered = false;
  std::uint64_t requests_retried = 0;
  std::uint64_t requests_failed = 0;
  double dl_mbps_pre = 0.0;
  double dl_mbps_outage = 0.0;
  double dl_mbps_post = 0.0;
};

RecoveryRun measure(double partition_ms) {
  constexpr double kWarmupS = 1.0;
  constexpr double kSettleS = 1.5;
  constexpr sim::TimeUs kControlDelay = sim::from_ms(2.0);

  ctrl::MasterConfig master_config = scenario::per_tti_master_config(/*stats_period_ttis=*/2);
  master_config.agent_timeout_us = sim::from_ms(50.0);
  master_config.agent_disconnect_timeout_us = sim::from_ms(200.0);
  master_config.request_timeout_us = sim::from_ms(30.0);
  scenario::Testbed testbed(std::move(master_config));

  apps::RemoteSchedulerConfig app_config;
  app_config.schedule_ahead_sf = 8;
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>(app_config));

  scenario::EnbSpec spec = bench::basic_enb(1, "recovery");
  spec.agent.dl_scheduler = "remote";
  spec.agent.remote_fallback_ttis = 30;
  spec.agent.fallback_scheduler = "local_rr";
  spec.uplink.delay = kControlDelay;
  spec.downlink.delay = kControlDelay;
  scenario::Testbed::Enb& enb = testbed.add_enb(spec);

  const auto rnti_a = testbed.add_ue(0, bench::fixed_cqi_ue(15));
  const auto rnti_b = testbed.add_ue(0, bench::fixed_cqi_ue(9, /*attach_after=*/2));
  bench::saturate_dl(testbed, 0, rnti_a);
  bench::saturate_dl(testbed, 0, rnti_b);

  RecoveryRun run;
  run.partition_ms = partition_ms;

  // Recovery probe, armed at the heal instant by the fault timeline below.
  struct Probe {
    bool armed = false;
    sim::TimeUs heal_at = 0;
    std::uint64_t decisions_at_heal = 0;
    sim::TimeUs first_decision_at = -1;
    sim::TimeUs resynced_at = -1;
  } probe;
  agent::Agent* agent = enb.agent.get();
  const ctrl::AgentId agent_id = enb.agent_id;
  testbed.on_tti([&](std::int64_t) {
    if (!probe.armed) return;
    if (probe.first_decision_at < 0 &&
        agent->remote_decisions_applied() > probe.decisions_at_heal) {
      probe.first_decision_at = testbed.sim().now();
    }
    if (probe.resynced_at < 0) {
      const auto* node = testbed.master().rib().find_agent(agent_id);
      if (node != nullptr && node->state == ctrl::SessionState::up) {
        probe.resynced_at = testbed.sim().now();
      }
    }
  });

  auto delivered = [&] {
    return testbed.metrics().total_bytes(1, rnti_a, lte::Direction::downlink) +
           testbed.metrics().total_bytes(1, rnti_b, lte::Direction::downlink);
  };

  testbed.run_seconds(kWarmupS);
  const std::uint64_t bytes_warmup = delivered();

  enb.set_control_down(true);
  testbed.run_seconds(partition_ms / 1000.0);
  const std::uint64_t bytes_outage = delivered();
  run.fallback_activated = agent->fallback_activations() > 0;

  enb.set_control_down(false);
  probe.armed = true;
  probe.heal_at = testbed.sim().now();
  probe.decisions_at_heal = agent->remote_decisions_applied();
  testbed.run_seconds(kSettleS);
  const std::uint64_t bytes_post = delivered();

  if (probe.first_decision_at >= 0) {
    run.heal_to_first_remote_decision_ms =
        static_cast<double>(probe.first_decision_at - probe.heal_at) / 1000.0;
  }
  if (probe.resynced_at >= 0) {
    run.heal_to_resync_ms = static_cast<double>(probe.resynced_at - probe.heal_at) / 1000.0;
  }
  run.fallback_recovered = agent->fallback_recoveries() > 0;
  run.requests_retried = testbed.master().requests_retried();
  run.requests_failed = testbed.master().requests_failed();
  run.dl_mbps_pre = scenario::Metrics::mbps(bytes_warmup, kWarmupS);
  run.dl_mbps_outage =
      scenario::Metrics::mbps(bytes_outage - bytes_warmup, partition_ms / 1000.0);
  run.dl_mbps_post = scenario::Metrics::mbps(bytes_post - bytes_outage, kSettleS);
  return run;
}

struct MasterRestartRun {
  int agents = 0;
  bool warm = false;
  double time_to_ready_ms = -1.0;
  bool recovered = false;
  bool checkpoint_loaded = false;
  std::uint64_t resyncs_paced = 0;
  std::uint64_t commands_held = 0;
  std::uint64_t policies_repushed = 0;
  int agents_up = 0;
};

MasterRestartRun measure_master_restart(int agents, bool warm) {
  constexpr double kWarmupS = 1.5;
  constexpr double kDeadS = 0.3;
  constexpr double kSettleS = 3.0;

  ctrl::MasterConfig master_config = scenario::per_tti_master_config(/*stats_period_ttis=*/2);
  master_config.agent_timeout_us = sim::from_ms(50.0);
  master_config.agent_disconnect_timeout_us = sim::from_ms(200.0);
  master_config.request_timeout_us = sim::from_ms(30.0);
  master_config.recovery.enabled = true;
  // Finite admission rate so recovery time scales with the fleet: the
  // cold/warm separation is then the per-agent re-sync round trips on top
  // of the shared pacing floor.
  master_config.recovery.resync_tokens_per_s = 50.0;
  master_config.recovery.resync_burst = 1.0;
  master_config.recovery.resync_retry_after_ms = 20.0;
  master_config.recovery.readiness_quorum = 1.0;
  master_config.recovery.readiness_timeout_us = sim::from_ms(4000.0);
  if (warm) {
    master_config.recovery.checkpoint_sink = std::make_shared<ctrl::MemoryCheckpointSink>();
    master_config.recovery.checkpoint_period_us = sim::from_ms(200.0);
  }
  scenario::Testbed testbed(std::move(master_config));

  for (int i = 0; i < agents; ++i) {
    scenario::EnbSpec spec = bench::basic_enb(static_cast<lte::EnbId>(i + 1), "fleet");
    // A realistic backhaul makes the cold/warm gap visible: a cold re-sync
    // pays a config-fetch round trip per agent that the warm delta skips.
    spec.uplink.delay = sim::from_ms(5.0);
    spec.downlink.delay = sim::from_ms(5.0);
    testbed.add_enb(spec);
  }

  testbed.run_seconds(kWarmupS);
  // Seed a last-known-good policy per agent so the re-push path (and, warm,
  // the checkpointed policy history) is part of what recovery restores.
  for (auto& enb : testbed.enbs()) {
    (void)testbed.master().send_policy(enb->agent_id,
                                       "mac:\n  dl_ue_scheduler:\n    behavior: local_rr\n");
  }
  testbed.run_seconds(0.5);

  for (auto& enb : testbed.enbs()) enb->set_control_down(true);
  testbed.run_seconds(kDeadS);
  for (auto& enb : testbed.enbs()) enb->set_control_down(false);
  testbed.master().restart();
  testbed.run_seconds(kSettleS);

  MasterRestartRun run;
  run.agents = agents;
  run.warm = warm;
  run.recovered = !testbed.master().recovering();
  run.checkpoint_loaded = testbed.master().checkpoint_loaded();
  if (run.recovered && testbed.master().last_recovery_duration() > 0) {
    run.time_to_ready_ms =
        static_cast<double>(testbed.master().last_recovery_duration()) / 1000.0;
  }
  run.resyncs_paced = testbed.master().resyncs_paced();
  run.commands_held = testbed.master().commands_held();
  run.policies_repushed = testbed.master().policies_repushed();
  for (auto& enb : testbed.enbs()) {
    const auto* node = testbed.master().rib().find_agent(enb->agent_id);
    if (node != nullptr && node->state == ctrl::SessionState::up) ++run.agents_up;
  }
  return run;
}

struct ShardFailoverRun {
  int shards = 0;
  int agents = 0;
  bool warm = false;
  double failover_ms = -1.0;
  double orphan_window_ms = 0.0;
  std::uint64_t adopted = 0;
  std::uint64_t warm_adoptions = 0;
  std::uint64_t cold_adoptions = 0;
  std::uint64_t pending = 0;
  int agents_up = 0;
};

// Part 3 ("Shard failover", docs/sharded_control.md): kill shard 0 of an
// N-shard coordinator and measure kill -> every orphan back up on its
// adopter. Warm reuses the dead shard's last checkpoint (delta re-sync at
// the adopter); cold pays the full re-sync including the config fetch
// round trip over the 5ms backhaul.
ShardFailoverRun measure_shard_failover(int shards, bool warm) {
  constexpr double kWarmupS = 1.5;
  constexpr double kSettleS = 3.0;

  ctrl::MasterConfig master_config = scenario::per_tti_master_config(/*stats_period_ttis=*/2);
  master_config.agent_timeout_us = sim::from_ms(50.0);
  master_config.agent_disconnect_timeout_us = sim::from_ms(200.0);
  master_config.request_timeout_us = sim::from_ms(30.0);
  master_config.recovery.enabled = true;
  master_config.recovery.resync_tokens_per_s = 50.0;
  master_config.recovery.resync_burst = 1.0;
  master_config.recovery.resync_retry_after_ms = 20.0;
  master_config.recovery.readiness_quorum = 1.0;
  master_config.recovery.readiness_timeout_us = sim::from_ms(4000.0);
  if (warm) {
    // The testbed turns the template sink into a per-shard factory, so the
    // dead shard's checkpoint is its own, not a shared file.
    master_config.recovery.checkpoint_sink = std::make_shared<ctrl::MemoryCheckpointSink>();
    master_config.recovery.checkpoint_period_us = sim::from_ms(200.0);
  }
  scenario::Testbed testbed(std::move(master_config), static_cast<std::size_t>(shards));

  const int agents = 2 * shards;
  for (int i = 0; i < agents; ++i) {
    scenario::EnbSpec spec = bench::basic_enb(static_cast<lte::EnbId>(i + 1), "fleet");
    spec.shard = static_cast<std::size_t>(i % shards);
    spec.uplink.delay = sim::from_ms(5.0);
    spec.downlink.delay = sim::from_ms(5.0);
    testbed.add_enb(spec);
  }

  testbed.run_seconds(kWarmupS);
  auto& coordinator = testbed.coordinator();
  (void)coordinator.kill_shard(0);
  testbed.run_seconds(kSettleS);

  ShardFailoverRun run;
  run.shards = shards;
  run.agents = agents;
  run.warm = warm;
  if (coordinator.last_failover_duration() > 0 && coordinator.failover_pending() == 0) {
    run.failover_ms = sim::to_seconds(coordinator.last_failover_duration()) * 1e3;
  }
  run.orphan_window_ms = sim::to_seconds(coordinator.last_orphan_window()) * 1e3;
  run.adopted = coordinator.agents_adopted();
  run.warm_adoptions = coordinator.warm_adoptions();
  run.cold_adoptions = coordinator.cold_adoptions();
  run.pending = coordinator.failover_pending();
  for (auto& enb : testbed.enbs()) {
    const auto* node = coordinator.find_agent(enb->agent_id);
    if (node != nullptr && node->state == ctrl::SessionState::up) ++run.agents_up;
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  flexran::util::Logger::instance().set_level(flexran::util::LogLevel::error);
  using flexran::bench::print_header;
  print_header(
      "Control-channel recovery: partition heal -> first applied remote DL MAC config");
  std::printf("%14s %22s %16s %10s %10s %10s %10s\n", "partition(ms)", "first decision (ms)",
              "resync (ms)", "retries", "pre Mb/s", "out Mb/s", "post Mb/s");

  std::vector<RecoveryRun> runs;
  for (double partition_ms : {50.0, 150.0, 400.0, 800.0}) {
    RecoveryRun run = measure(partition_ms);
    std::printf("%14.0f %22.2f %16.2f %10llu %10.2f %10.2f %10.2f\n", run.partition_ms,
                run.heal_to_first_remote_decision_ms, run.heal_to_resync_ms,
                static_cast<unsigned long long>(run.requests_retried), run.dl_mbps_pre,
                run.dl_mbps_outage, run.dl_mbps_post);
    runs.push_back(run);
  }

  // Machine-readable result: one JSON object on the final line.
  std::string json =
      "{" +
      flexran::bench::json_header("control_channel_recovery",
                                  "control_delay=2ms stats_period=2 fallback=30ttis") +
      ",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RecoveryRun& run = runs[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"partition_ms\":%.0f,\"heal_to_first_remote_decision_ms\":%.3f,"
                  "\"heal_to_resync_ms\":%.3f,\"fallback_activated\":%s,"
                  "\"fallback_recovered\":%s,\"requests_retried\":%llu,"
                  "\"requests_failed\":%llu,\"dl_mbps_pre\":%.3f,\"dl_mbps_outage\":%.3f,"
                  "\"dl_mbps_post\":%.3f}",
                  i == 0 ? "" : ",", run.partition_ms, run.heal_to_first_remote_decision_ms,
                  run.heal_to_resync_ms, run.fallback_activated ? "true" : "false",
                  run.fallback_recovered ? "true" : "false",
                  static_cast<unsigned long long>(run.requests_retried),
                  static_cast<unsigned long long>(run.requests_failed), run.dl_mbps_pre,
                  run.dl_mbps_outage, run.dl_mbps_post);
    json += buffer;
  }
  json += "]}";
  std::printf("%s\n", json.c_str());

  print_header("Master restart: crash -> readiness barrier, cold vs warm checkpoint");
  std::printf("%8s %8s %18s %12s %10s %10s %10s\n", "agents", "mode", "time-to-ready(ms)",
              "paced", "repushed", "held", "up");
  std::vector<MasterRestartRun> restarts;
  for (const int agents : {2, 4, 8}) {
    for (const bool warm : {false, true}) {
      MasterRestartRun run = measure_master_restart(agents, warm);
      std::printf("%8d %8s %18.2f %12llu %10llu %10llu %7d/%d\n", run.agents,
                  run.warm ? "warm" : "cold", run.time_to_ready_ms,
                  static_cast<unsigned long long>(run.resyncs_paced),
                  static_cast<unsigned long long>(run.policies_repushed),
                  static_cast<unsigned long long>(run.commands_held), run.agents_up,
                  run.agents);
      restarts.push_back(run);
    }
  }

  print_header("Shard failover: kill shard 0 -> orphans adopted and back up, cold vs warm");
  std::printf("%8s %8s %8s %18s %10s %10s %10s\n", "shards", "agents", "mode",
              "failover(ms)", "adopted", "warm/cold", "up");
  std::vector<ShardFailoverRun> failovers;
  for (const int shards : {2, 4, 8}) {
    for (const bool warm : {false, true}) {
      ShardFailoverRun run = measure_shard_failover(shards, warm);
      std::printf("%8d %8d %8s %18.2f %10llu %6llu/%-3llu %7d/%d\n", run.shards, run.agents,
                  run.warm ? "warm" : "cold", run.failover_ms,
                  static_cast<unsigned long long>(run.adopted),
                  static_cast<unsigned long long>(run.warm_adoptions),
                  static_cast<unsigned long long>(run.cold_adoptions), run.agents_up,
                  run.agents);
      failovers.push_back(run);
    }
  }

  const char* json_path = argc > 1 ? argv[1] : "BENCH_master_recovery.json";
  std::ofstream out(json_path);
  out << "{" << flexran::bench::json_header("master_restart_recovery",
                                            "resync_tokens_per_s=50 burst=1 quorum=1.0 "
                                            "dead=300ms checkpoint_period=200ms")
      << ",\n\"runs\":[\n";
  for (std::size_t i = 0; i < restarts.size(); ++i) {
    const MasterRestartRun& run = restarts[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"agents\":%d,\"mode\":\"%s\",\"time_to_ready_ms\":%.3f,"
                  "\"recovered\":%s,\"checkpoint_loaded\":%s,\"resyncs_paced\":%llu,"
                  "\"commands_held\":%llu,\"policies_repushed\":%llu,\"agents_up\":%d}%s\n",
                  run.agents, run.warm ? "warm" : "cold", run.time_to_ready_ms,
                  run.recovered ? "true" : "false", run.checkpoint_loaded ? "true" : "false",
                  static_cast<unsigned long long>(run.resyncs_paced),
                  static_cast<unsigned long long>(run.commands_held),
                  static_cast<unsigned long long>(run.policies_repushed),
                  run.agents_up, i + 1 < restarts.size() ? "," : "");
    out << buffer;
  }
  out << "],\n\"failover_runs\":[\n";
  for (std::size_t i = 0; i < failovers.size(); ++i) {
    const ShardFailoverRun& run = failovers[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"shards\":%d,\"agents\":%d,\"mode\":\"%s\",\"failover_ms\":%.3f,"
                  "\"orphan_window_ms\":%.3f,\"adopted\":%llu,\"warm_adoptions\":%llu,"
                  "\"cold_adoptions\":%llu,\"pending\":%llu,\"agents_up\":%d}%s\n",
                  run.shards, run.agents, run.warm ? "warm" : "cold", run.failover_ms,
                  run.orphan_window_ms, static_cast<unsigned long long>(run.adopted),
                  static_cast<unsigned long long>(run.warm_adoptions),
                  static_cast<unsigned long long>(run.cold_adoptions),
                  static_cast<unsigned long long>(run.pending), run.agents_up,
                  i + 1 < failovers.size() ? "," : "");
    out << buffer;
  }
  out << "]}\n";
  std::printf("\nJSON sweep written to %s\n", json_path);
  return 0;
}
