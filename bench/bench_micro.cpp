// Micro-benchmarks (google-benchmark) for the platform's hot paths and the
// design-choice ablations called out in DESIGN.md:
//  * FlexRAN protocol encode/decode (the per-TTI stats report with 16 UEs,
//    the scheduling command, the envelope);
//  * VSF behavior swap (the Sec. 5.4 hot path);
//  * RIB update application;
//  * single-writer RIB vs a mutex-per-update variant (the paper's argument
//    for the Task Manager's slotted design);
//  * YAML policy parsing;
//  * one round-robin scheduling decision for a loaded cell.
#include <benchmark/benchmark.h>

#include <mutex>

#include "agent/control_module.h"
#include "agent/schedulers.h"
#include "controller/arbiter.h"
#include "controller/rib.h"
#include "controller/rib_view.h"
#include "proto/messages.h"
#include "stack/enodeb.h"
#include "util/yaml_lite.h"

namespace flexran {
namespace {

proto::StatsReply make_stats_reply(int n_ues) {
  proto::StatsReply reply;
  reply.request_id = 1;
  reply.subframe = 123456;
  for (int i = 0; i < n_ues; ++i) {
    proto::UeStatsReport ue;
    ue.rnti = static_cast<lte::Rnti>(70 + i);
    ue.bsr_bytes = {0, 0, 14000u + static_cast<std::uint32_t>(i), 0};
    ue.wb_cqi = static_cast<std::uint8_t>(5 + i % 10);
    ue.rlc_queue_bytes = 14000;
    ue.dl_bytes_delivered = 123456789;
    reply.ue_reports.push_back(ue);
  }
  reply.cell_reports.push_back({1, -96.5, 48, 20, static_cast<std::uint32_t>(n_ues)});
  return reply;
}

void BM_EncodeStatsReply16Ues(benchmark::State& state) {
  const auto reply = make_stats_reply(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::pack(reply));
  }
  state.SetLabel("per-TTI agent report");
}
BENCHMARK(BM_EncodeStatsReply16Ues);

void BM_DecodeStatsReply16Ues(benchmark::State& state) {
  const auto wire = proto::pack(make_stats_reply(16));
  for (auto _ : state) {
    auto envelope = proto::Envelope::decode(wire);
    benchmark::DoNotOptimize(proto::unpack<proto::StatsReply>(*envelope));
  }
}
BENCHMARK(BM_DecodeStatsReply16Ues);

void BM_EncodeDlMacConfig(benchmark::State& state) {
  proto::DlMacConfig config;
  config.cell_id = 1;
  config.target_subframe = 4242;
  for (int i = 0; i < 8; ++i) {
    lte::DlDci dci;
    dci.rnti = static_cast<lte::Rnti>(70 + i);
    dci.rbs.set_range(i * 6, 6);
    dci.mcs = 20;
    config.dcis.push_back(dci);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::pack(config));
  }
  state.SetLabel("8-UE scheduling command");
}
BENCHMARK(BM_EncodeDlMacConfig);

void BM_VsfSwap(benchmark::State& state) {
  agent::register_builtin_vsfs();
  agent::VsfCache cache;
  (void)cache.store("mac", "dl_ue_scheduler", "local_rr");
  (void)cache.store("mac", "dl_ue_scheduler", "local_pf");
  agent::MacControlModule mac(cache);
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    benchmark::DoNotOptimize(
        mac.set_behavior(agent::MacControlModule::kDlSchedulerSlot,
                         flip ? "local_pf" : "local_rr"));
  }
  state.SetLabel("paper Sec 5.4: ~103ns");
}
BENCHMARK(BM_VsfSwap);

void BM_RibUpdateSingleWriter(benchmark::State& state) {
  ctrl::Rib rib;
  auto& agent = rib.agent(1);
  agent.cells[1] = ctrl::CellNode{};
  const auto reply = make_stats_reply(16);
  for (auto _ : state) {
    for (const auto& report : reply.ue_reports) {
      auto& ue = agent.cells[1].ues[report.rnti];
      ue.rnti = report.rnti;
      ue.stats = report;
      ue.cqi_avg.add(report.wb_cqi);
    }
    benchmark::ClobberMemory();
  }
  state.SetLabel("16-UE report applied, no locking");
}
BENCHMARK(BM_RibUpdateSingleWriter);

void BM_RibUpdateMutexPerUe(benchmark::State& state) {
  // Ablation: the design the paper rejects -- any component may write, so
  // every UE update takes a lock even when uncontended.
  ctrl::Rib rib;
  auto& agent = rib.agent(1);
  agent.cells[1] = ctrl::CellNode{};
  std::mutex mutex;
  const auto reply = make_stats_reply(16);
  for (auto _ : state) {
    for (const auto& report : reply.ue_reports) {
      std::scoped_lock lock(mutex);
      auto& ue = agent.cells[1].ues[report.rnti];
      ue.rnti = report.rnti;
      ue.stats = report;
      ue.cqi_avg.add(report.wb_cqi);
    }
    benchmark::ClobberMemory();
  }
  state.SetLabel("ablation: lock per UE update");
}
BENCHMARK(BM_RibUpdateMutexPerUe);

void BM_PolicyYamlParse(benchmark::State& state) {
  const char* yaml =
      "mac:\n"
      "  dl_ue_scheduler:\n"
      "    behavior: sliced\n"
      "    parameters:\n"
      "      slices:\n"
      "        - share: 0.7\n"
      "          policy: fair\n"
      "          rntis: [70, 71, 72, 73, 74]\n"
      "        - share: 0.3\n"
      "          policy: group\n"
      "          rntis: [80, 81, 82, 83, 84]\n"
      "          premium_rntis: [80, 81]\n"
      "          premium_share: 0.7\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::parse_yaml(yaml));
  }
  state.SetLabel("Fig. 3 policy message");
}
BENCHMARK(BM_PolicyYamlParse);

void BM_RoundRobinDecision(benchmark::State& state) {
  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 1;
  config.cells[0].cell_id = 1;
  stack::EnodebDataPlane dp(simulator, config);
  agent::AgentApi api(dp);
  const auto n_ues = state.range(0);
  for (std::int64_t i = 0; i < n_ues; ++i) {
    stack::UeProfile profile;
    profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(static_cast<int>(5 + i % 10));
    profile.attach_after_ttis = 0;
    const auto rnti = dp.add_ue(std::move(profile));
    dp.enqueue_dl(rnti, lte::kDefaultDrb, 14000);
  }
  dp.subframe_begin(1);

  agent::RoundRobinDlVsf scheduler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule_dl(api, 1));
  }
  state.SetLabel("one TTI decision; must be << 1ms");
}
BENCHMARK(BM_RoundRobinDecision)->Arg(4)->Arg(16)->Arg(50);

void BM_ConflictArbiterClaim(benchmark::State& state) {
  // The per-decision cost of the conflict-resolution extension: must be
  // negligible next to encoding/sending the decision itself.
  ctrl::ConflictArbiter arbiter;
  proto::DlMacConfig config;
  config.cell_id = 1;
  for (int i = 0; i < 8; ++i) {
    lte::DlDci dci;
    dci.rnti = static_cast<lte::Rnti>(70 + i);
    dci.rbs.set_range(i * 6, 6);
    config.dcis.push_back(dci);
  }
  std::int64_t subframe = 0;
  for (auto _ : state) {
    config.target_subframe = ++subframe;
    benchmark::DoNotOptimize(arbiter.claim_dl(1, config));
    if (subframe % 64 == 0) arbiter.prune_before(1, subframe);
  }
  state.SetLabel("8-DCI decision validated + claimed");
}
BENCHMARK(BM_ConflictArbiterClaim);

void BM_RibSummarize(benchmark::State& state) {
  ctrl::Rib rib;
  for (ctrl::AgentId agent_id = 1; agent_id <= 3; ++agent_id) {
    auto& agent = rib.agent(agent_id);
    auto& cell = agent.cells[agent_id];
    cell.config.cell_id = agent_id;
    for (int i = 0; i < 16; ++i) {
      auto& ue = cell.ues[static_cast<lte::Rnti>(70 + i)];
      ue.rnti = static_cast<lte::Rnti>(70 + i);
      ue.stats.wb_cqi = 10;
      ue.stats.rsrp = {{1, -80.0}, {2, -85.0}, {3, -90.0}};
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl::summarize_ues(rib));
  }
  state.SetLabel("northbound view, 3 agents x 16 UEs");
}
BENCHMARK(BM_RibSummarize);

void BM_EnvelopeRoundTrip(benchmark::State& state) {
  proto::EventNotification tick;
  tick.event = proto::EventType::subframe_tick;
  tick.subframe = 123456;
  tick.cell_id = 1;
  for (auto _ : state) {
    const auto wire = proto::pack(tick);
    auto envelope = proto::Envelope::decode(wire);
    benchmark::DoNotOptimize(proto::unpack<proto::EventNotification>(*envelope));
  }
  state.SetLabel("sync tick: smallest per-TTI message");
}
BENCHMARK(BM_EnvelopeRoundTrip);

}  // namespace
}  // namespace flexran

BENCHMARK_MAIN();
