// Shared helpers for the figure/table reproduction benches: paper-style
// table printing and common testbed construction.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "scenario/testbed.h"

// Build identity baked in by bench/CMakeLists.txt so checked-in result
// files are traceable to a commit.
#ifndef FLEXRAN_GIT_SHA
#define FLEXRAN_GIT_SHA "unknown"
#endif

namespace flexran::bench {

/// Common prefix for the machine-readable JSON line a bench emits:
/// benchmark name, the git SHA of the build, and a free-form config
/// summary. Callers splice it as the first fields of their JSON object:
///   std::string json = "{" + json_header("x", "enbs=2") + ",\"runs\":[...]}";
inline std::string json_header(const std::string& bench, const std::string& config) {
  return "\"bench\":\"" + bench + "\",\"git_sha\":\"" FLEXRAN_GIT_SHA "\",\"config\":\"" +
         config + "\"";
}

inline void print_header(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

inline void print_note(const std::string& note) { std::printf("%s\n", note.c_str()); }

inline scenario::EnbSpec basic_enb(lte::EnbId id = 1, const std::string& name = "enb") {
  scenario::EnbSpec spec;
  spec.enb.enb_id = id;
  spec.enb.cells[0].cell_id = id;
  spec.agent.name = name + "-" + std::to_string(id);
  return spec;
}

inline stack::UeProfile fixed_cqi_ue(int cqi, std::int64_t attach_after = 1, int ul_cqi = 8) {
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  profile.attach_after_ttis = attach_after;
  profile.ul_cqi = ul_cqi;
  return profile;
}

/// Keeps the DL queue of `rnti` backlogged (speedtest / full-buffer UDP).
inline void saturate_dl(scenario::Testbed& testbed, std::size_t enb_index, lte::Rnti rnti,
                        std::uint32_t low_water = 60'000) {
  auto* dp = testbed.enb(enb_index).data_plane.get();
  testbed.on_tti([&testbed, dp, rnti, low_water](std::int64_t) {
    const auto* ue = dp->ue(rnti);
    if (ue != nullptr && ue->dl_queue.total_bytes() < low_water) {
      (void)testbed.epc().downlink(rnti, low_water);
    }
  });
}

/// Keeps the UL buffer of `rnti` backlogged.
inline void saturate_ul(scenario::Testbed& testbed, std::size_t enb_index, lte::Rnti rnti,
                        std::uint32_t low_water = 30'000) {
  auto* dp = testbed.enb(enb_index).data_plane.get();
  testbed.on_tti([dp, rnti, low_water](std::int64_t) {
    const auto* ue = dp->ue(rnti);
    if (ue != nullptr && ue->connected() && ue->ul_buffer_bytes < low_water) {
      dp->enqueue_ul(rnti, low_water);
    }
  });
}

}  // namespace flexran::bench
