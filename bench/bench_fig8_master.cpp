// Figure 8 reproduction: master controller resource usage vs number of
// connected agents (16 UEs each, per-TTI reporting, centralized scheduler
// app). Reports the measured per-cycle time of the core components (RIB
// updater slot) and the applications slot, the idle fraction of the 1 ms
// TTI cycle, and the memory footprint of the RIB.
#include "apps/monitoring.h"
#include "apps/remote_scheduler.h"
#include "bench/bench_common.h"
#include "traffic/udp.h"

using namespace flexran;

namespace {

struct MasterLoad {
  double apps_us = 0.0;
  double core_us = 0.0;
  double idle_fraction = 0.0;
  double rib_kb = 0.0;
  std::uint64_t updates = 0;
};

MasterLoad run(int n_agents, double seconds) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>());
  testbed.master().add_app(std::make_unique<apps::MonitoringApp>(100));

  std::vector<std::unique_ptr<traffic::UdpCbrSource>> sources;
  for (int a = 0; a < n_agents; ++a) {
    testbed.add_enb(bench::basic_enb(static_cast<lte::EnbId>(a + 1)));
    for (int i = 0; i < 16; ++i) {
      const auto rnti =
          testbed.add_ue(static_cast<std::size_t>(a), bench::fixed_cqi_ue(8 + i % 8, 5 + i));
      sources.push_back(std::make_unique<traffic::UdpCbrSource>(
          testbed.sim(),
          [&testbed, rnti](std::uint32_t bytes) { (void)testbed.epc().downlink(rnti, bytes); },
          1.5));
      sources.back()->start();
    }
  }
  // When no agent exists the ticker still needs a driver for the master.
  testbed.run_seconds(seconds);

  MasterLoad load;
  const auto& tm = testbed.master().task_manager();
  load.apps_us = tm.apps_time_us().mean();
  load.core_us = tm.updater_time_us().mean();
  load.idle_fraction = tm.mean_idle_fraction();
  load.rib_kb = static_cast<double>(testbed.master().rib_bytes()) / 1024.0;
  load.updates = testbed.master().updates_applied();
  return load;
}

/// 0-agent case: the master alone, cycled manually.
MasterLoad run_empty(double seconds) {
  sim::Simulator simulator;
  ctrl::MasterController master(simulator, scenario::per_tti_master_config());
  master.add_app(std::make_unique<apps::RemoteSchedulerApp>());
  master.add_app(std::make_unique<apps::MonitoringApp>(100));
  sim::TtiTicker ticker(simulator);
  ticker.subscribe([&](std::int64_t) { master.run_cycle(); });
  ticker.start();
  simulator.run_until(sim::from_seconds(seconds));

  MasterLoad load;
  load.apps_us = master.task_manager().apps_time_us().mean();
  load.core_us = master.task_manager().updater_time_us().mean();
  load.idle_fraction = master.task_manager().mean_idle_fraction();
  load.rib_kb = static_cast<double>(master.rib_bytes()) / 1024.0;
  return load;
}

}  // namespace

int main() {
  const double kSeconds = 5.0;
  bench::print_header("Fig. 8 -- master TTI-cycle utilization & memory (16 UEs/agent)");
  bench::print_note(
      "paper: only a small fraction of the 1 ms cycle used; core-component time\n"
      "grows with agents (RIB updater); memory grows with the RIB (~5-10 MB\n"
      "process-level; here the RIB data structure itself is reported).");

  std::printf("\n%8s %14s %14s %12s %12s %14s\n", "agents", "apps (us)", "core (us)",
              "idle (%)", "RIB (KB)", "updates/s");
  for (int agents = 0; agents <= 3; ++agents) {
    const auto load = agents == 0 ? run_empty(kSeconds) : run(agents, kSeconds);
    std::printf("%8d %14.2f %14.2f %12.1f %12.1f %14.0f\n", agents, load.apps_us, load.core_us,
                load.idle_fraction * 100.0, load.rib_kb,
                static_cast<double>(load.updates) / kSeconds);
  }
  std::printf(
      "\nShape check: core-component time and RIB size grow with the number of\n"
      "agents while the cycle stays almost entirely idle, as in the paper.\n");
  return 0;
}
