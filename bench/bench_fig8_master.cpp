// Figure 8 reproduction: master controller resource usage vs number of
// connected agents (16 UEs each, per-TTI reporting, centralized scheduler
// app). Reports the measured per-cycle time of the core components (RIB
// updater slot) and the applications slot, the idle fraction of the 1 ms
// TTI cycle, and the memory footprint of the RIB.
//
// Part 2 sweeps the task manager's worker pool (0 = the original inline
// time-sliced loop, then 1/2/4/8 workers) against agent counts and emits
// the series as JSON (BENCH_fig8_workers.json) so the perf trajectory is
// tracked across revisions.
//
// Part 3 sweeps the two-tier control plane (docs/sharded_control.md): a
// fixed fleet of simulated agents and a fixed pool of stalling analytics
// apps, partitioned across 1/2/4/8 ShardCores under one Coordinator in a
// single process. The per-shard series rides in the same JSON file.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>

#include "apps/monitoring.h"
#include "apps/remote_scheduler.h"
#include "bench/bench_common.h"
#include "controller/coordinator.h"
#include "controller/rib_snapshot.h"
#include "controller/task_manager.h"
#include "net/sim_transport.h"
#include "traffic/udp.h"

using namespace flexran;

namespace {

struct MasterLoad {
  double apps_us = 0.0;
  double core_us = 0.0;
  double idle_fraction = 0.0;
  double rib_kb = 0.0;
  std::uint64_t updates = 0;
};

MasterLoad run(int n_agents, double seconds) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>());
  testbed.master().add_app(std::make_unique<apps::MonitoringApp>(100));

  std::vector<std::unique_ptr<traffic::UdpCbrSource>> sources;
  for (int a = 0; a < n_agents; ++a) {
    testbed.add_enb(bench::basic_enb(static_cast<lte::EnbId>(a + 1)));
    for (int i = 0; i < 16; ++i) {
      const auto rnti =
          testbed.add_ue(static_cast<std::size_t>(a), bench::fixed_cqi_ue(8 + i % 8, 5 + i));
      sources.push_back(std::make_unique<traffic::UdpCbrSource>(
          testbed.sim(),
          [&testbed, rnti](std::uint32_t bytes) { (void)testbed.epc().downlink(rnti, bytes); },
          1.5));
      sources.back()->start();
    }
  }
  // When no agent exists the ticker still needs a driver for the master.
  testbed.run_seconds(seconds);

  MasterLoad load;
  const auto& tm = testbed.master().task_manager();
  load.apps_us = tm.apps_time_us().mean();
  load.core_us = tm.updater_time_us().mean();
  load.idle_fraction = tm.mean_idle_fraction();
  load.rib_kb = static_cast<double>(testbed.master().rib_bytes()) / 1024.0;
  load.updates = testbed.master().updates_applied();
  return load;
}

/// 0-agent case: the master alone, cycled manually.
MasterLoad run_empty(double seconds) {
  sim::Simulator simulator;
  ctrl::MasterController master(simulator, scenario::per_tti_master_config());
  master.add_app(std::make_unique<apps::RemoteSchedulerApp>());
  master.add_app(std::make_unique<apps::MonitoringApp>(100));
  sim::TtiTicker ticker(simulator);
  ticker.subscribe([&](std::int64_t) { master.run_cycle(); });
  ticker.start();
  simulator.run_until(sim::from_seconds(seconds));

  MasterLoad load;
  load.apps_us = master.task_manager().apps_time_us().mean();
  load.core_us = master.task_manager().updater_time_us().mean();
  load.idle_fraction = master.task_manager().mean_idle_fraction();
  load.rib_kb = static_cast<double>(master.rib_bytes()) / 1024.0;
  return load;
}

// ---------------------------------------------------------- worker sweep --

/// No-op command sink for the standalone task-manager sweep.
class SinkNorthbound : public ctrl::NorthboundApi {
 public:
  explicit SinkNorthbound(ctrl::SnapshotStore& store) : store_(&store) {}
  std::shared_ptr<const ctrl::RibSnapshot> rib_snapshot() const override {
    return store_->current();
  }
  sim::TimeUs now() const override { return 0; }
  std::int64_t agent_subframe(ctrl::AgentId) const override { return 0; }
  util::Status send_dl_mac_config(ctrl::AgentId, const proto::DlMacConfig&) override {
    return {};
  }
  util::Status send_ul_mac_config(ctrl::AgentId, const proto::UlMacConfig&) override {
    return {};
  }
  util::Status send_handover(ctrl::AgentId, const proto::HandoverCommand&) override { return {}; }
  util::Status send_abs_config(ctrl::AgentId, const proto::AbsConfig&) override { return {}; }
  util::Status send_carrier_restriction(ctrl::AgentId, const proto::CarrierRestriction&) override {
    return {};
  }
  util::Status send_drx_config(ctrl::AgentId, const proto::DrxConfig&) override { return {}; }
  util::Status send_scell_command(ctrl::AgentId, const proto::ScellCommand&) override {
    return {};
  }
  util::Status request_stats(ctrl::AgentId, const proto::StatsRequest&) override { return {}; }
  util::Status subscribe_events(ctrl::AgentId, std::vector<proto::EventType>, bool) override {
    return {};
  }
  util::Status push_vsf(ctrl::AgentId, const std::string&, const std::string&,
                        const std::string&) override {
    return {};
  }
  util::Status send_policy(ctrl::AgentId, const std::string&) override { return {}; }

 private:
  ctrl::SnapshotStore* store_;
};

/// Per-agent control app for the sweep: reads its agent's subtree from the
/// pinned snapshot, stalls for `stall_us` simulating a synchronous call to
/// an external analytics/policy service (the MEC pattern of Sec. 6.2 --
/// the kind of app-side blocking the paper's single-threaded app slot
/// serializes), and issues one batched command.
class StallApp final : public ctrl::App {
 public:
  StallApp(ctrl::AgentId agent, std::int64_t stall_us)
      : agent_(agent), stall_us_(stall_us), name_("stall-" + std::to_string(agent)) {}
  std::string_view name() const override { return name_; }
  int priority() const override { return 1; }
  void on_cycle(std::int64_t, ctrl::NorthboundApi& api) override {
    const auto snapshot = api.rib_snapshot();
    const auto* agent = snapshot->find_agent(agent_);
    if (agent != nullptr) {
      for (const auto& [cell_id, cell] : agent->cells) {
        (void)cell_id;
        for (const auto& [rnti, ue] : cell.ues) {
          (void)rnti;
          checksum_ += ue.stats.wb_cqi;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    (void)api.send_policy(agent_, "sweep");
  }
  std::uint64_t checksum() const { return checksum_; }

 private:
  ctrl::AgentId agent_;
  std::int64_t stall_us_;
  std::string name_;
  std::uint64_t checksum_ = 0;
};

/// Whole-RIB reader in the non-critical tier (monitoring analogue).
class SweepMonitorApp final : public ctrl::App {
 public:
  std::string_view name() const override { return "sweep-monitor"; }
  int priority() const override { return 200; }
  void on_cycle(std::int64_t, ctrl::NorthboundApi& api) override {
    const auto snapshot = api.rib_snapshot();
    for (const auto& [id, agent] : snapshot->agents()) {
      (void)id;
      for (const auto& [cell_id, cell] : agent->cells) {
        (void)cell_id;
        ues_seen_ += cell.ues.size();
      }
    }
  }

 private:
  std::uint64_t ues_seen_ = 0;
};

struct SweepResult {
  int workers = 0;
  int agents = 0;
  double cycles_per_sec = 0.0;
  double mean_cycle_us = 0.0;
  double mean_updater_us = 0.0;
  double mean_app_slot_us = 0.0;
  double mean_publish_us = 0.0;
  std::uint64_t commands = 0;
};

SweepResult run_sweep(int workers, int n_agents, int cycles, std::int64_t stall_us) {
  ctrl::Rib rib;
  for (ctrl::AgentId id = 1; id <= static_cast<ctrl::AgentId>(n_agents); ++id) {
    auto& agent = rib.agent(id);
    agent.id = id;
    agent.enb_id = id;
    auto& cell = agent.cells[id];
    cell.config.bandwidth_mhz = 10.0;
    for (lte::Rnti rnti = 70; rnti < 86; ++rnti) {  // 16 UEs per agent
      auto& ue = cell.ues[rnti];
      ue.rnti = rnti;
      ue.stats.wb_cqi = 10;
    }
  }

  ctrl::SnapshotStore store;
  util::RunningStats publish_us;
  std::set<ctrl::AgentId> all_dirty;
  for (ctrl::AgentId id = 1; id <= static_cast<ctrl::AgentId>(n_agents); ++id) {
    all_dirty.insert(id);
  }

  ctrl::TaskManagerConfig config;
  config.real_time = false;
  config.workers = workers;
  ctrl::TaskManager tm(
      config,
      // Updater slot: per-TTI stats churn on every agent (worst-case dirty
      // set), then the snapshot publish -- exactly what the master does.
      [&](std::int64_t) {
        for (ctrl::AgentId id = 1; id <= static_cast<ctrl::AgentId>(n_agents); ++id) {
          auto& agent = rib.agent(id);
          for (auto& [cell_id, cell] : agent.cells) {
            (void)cell_id;
            for (auto& [rnti, ue] : cell.ues) {
              (void)rnti;
              ue.stats.dl_bytes_delivered += 1500;
            }
          }
        }
        const auto start = std::chrono::steady_clock::now();
        store.publish(rib, all_dirty, /*structure_changed=*/store.current()->version() == 0);
        publish_us.add(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count());
        return static_cast<std::size_t>(n_agents);
      },
      nullptr);
  tm.set_snapshot_source([&] { return store.current(); }, [] { return sim::TimeUs{0}; });

  SinkNorthbound api(store);
  std::vector<std::unique_ptr<ctrl::App>> apps;
  for (ctrl::AgentId id = 1; id <= static_cast<ctrl::AgentId>(n_agents); ++id) {
    apps.push_back(std::make_unique<StallApp>(id, stall_us));
  }
  apps.push_back(std::make_unique<SweepMonitorApp>());
  for (auto& app : apps) tm.add_app(app.get(), api);

  const auto start = std::chrono::steady_clock::now();
  for (int cycle = 0; cycle < cycles; ++cycle) tm.run_cycle(cycle, api);
  tm.quiesce();
  const double wall_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start).count();

  SweepResult result;
  result.workers = workers;
  result.agents = n_agents;
  result.cycles_per_sec = cycles / (wall_us / 1e6);
  result.mean_cycle_us = wall_us / cycles;
  result.mean_updater_us = tm.updater_time_us().mean();
  result.mean_app_slot_us = tm.apps_time_us().mean();
  result.mean_publish_us = publish_us.mean();
  result.commands = tm.commands_flushed();
  return result;
}

// ---------------------------------------------------------- shard sweep --

/// Analytics app for the shard sweep: scans the snapshot its shard
/// publishes and stalls on a simulated external service call, like the
/// worker-sweep StallApp but shard-resident. The app pool is fixed while
/// the shard count varies, so the sweep measures how partitioning the SAME
/// application workload across shard app slots shortens the cycle.
class ShardAnalyticsApp final : public ctrl::App {
 public:
  ShardAnalyticsApp(int index, std::int64_t stall_us)
      : stall_us_(stall_us), name_("analytics-" + std::to_string(index)) {}
  std::string_view name() const override { return name_; }
  int priority() const override { return 1; }
  void on_cycle(std::int64_t, ctrl::NorthboundApi& api) override {
    const auto snapshot = api.rib_snapshot();
    for (const auto& [id, agent] : snapshot->agents()) {
      (void)id;
      for (const auto& [cell_id, cell] : agent->cells) {
        (void)cell_id;
        checksum_ += cell.ues.size();
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
  }

 private:
  std::int64_t stall_us_;
  std::string name_;
  std::uint64_t checksum_ = 0;
};

struct ShardDetail {
  std::size_t agents = 0;
  std::uint64_t updates = 0;
  double updater_us = 0.0;
  double app_slot_us = 0.0;
};

struct ShardSweepResult {
  std::size_t shards = 1;
  int agents = 0;
  double cycles_per_sec = 0.0;
  double mean_cycle_us = 0.0;
  std::uint64_t updates = 0;
  std::vector<ShardDetail> per_shard;
};

/// One wire-encoded StatsReply (2 UEs), the frame every simulated agent
/// replays. Epoch 0 matches the session epoch add_agent starts with.
std::vector<std::uint8_t> shard_sweep_stats_frame() {
  proto::StatsReply reply;
  reply.request_id = 1;
  reply.subframe = 1;
  for (lte::Rnti rnti = 70; rnti < 72; ++rnti) {
    proto::UeStatsReport report;
    report.rnti = rnti;
    report.wb_cqi = 10;
    report.dl_bytes_delivered = 1500;
    reply.ue_reports.push_back(report);
  }
  proto::WireEncoder enc;
  reply.encode_body(enc);
  proto::Envelope envelope;
  envelope.type = proto::MessageType::stats_reply;
  envelope.xid = 0;
  envelope.body = enc.take();
  return envelope.encode();
}

ShardSweepResult run_shard_sweep(std::size_t shards, int n_agents, int cycles,
                                 int n_apps, std::int64_t stall_us, int report_period) {
  sim::Simulator simulator;
  ctrl::CoordinatorConfig config;
  config.shards = shards;
  config.shard.auto_configure = false;  // agents are injected, no hello
  config.shard.echo_period_cycles = 0;
  config.shard.task_manager.real_time = false;
  config.shard.task_manager.workers = 1;  // one app-slot worker per shard
  ctrl::Coordinator coordinator(simulator, config);

  // Block placement: agent i on shard i*S/N, so each analytics app's
  // agent range lives wholly on the shard the app is registered with.
  std::vector<net::SimTransportPair> links;
  links.reserve(static_cast<std::size_t>(n_agents));
  for (int i = 0; i < n_agents; ++i) {
    links.push_back(net::make_sim_transport_pair(simulator));
    const auto shard = static_cast<std::size_t>(i) * shards / static_cast<std::size_t>(n_agents);
    coordinator.add_agent(*links.back().a, static_cast<std::uint64_t>(i + 1), shard);
  }
  for (int a = 0; a < n_apps; ++a) {
    const auto shard = static_cast<std::size_t>(a) * shards / static_cast<std::size_t>(n_apps);
    coordinator.shard(shard).add_app(std::make_unique<ShardAnalyticsApp>(a, stall_us));
  }

  const auto frame = shard_sweep_stats_frame();
  sim::TimeUs t = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int cycle = 0; cycle < cycles; ++cycle) {
    // Staggered periodic reporting: 1/report_period of the fleet per TTI.
    for (int i = cycle % report_period; i < n_agents; i += report_period) {
      (void)links[static_cast<std::size_t>(i)].b->send(frame);
    }
    t += 1000;
    simulator.run_until(t);  // deliver this TTI's reports
    coordinator.run_cycle();
  }
  coordinator.quiesce();
  const double wall_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start).count();

  ShardSweepResult result;
  result.shards = shards;
  result.agents = n_agents;
  result.cycles_per_sec = cycles / (wall_us / 1e6);
  result.mean_cycle_us = wall_us / cycles;
  result.updates = coordinator.updates_applied();
  for (std::size_t s = 0; s < coordinator.shard_count(); ++s) {
    const auto& core = coordinator.shard(s);
    ShardDetail detail;
    detail.agents = core.rib().agents().size();
    detail.updates = core.updates_applied();
    detail.updater_us = core.task_manager().updater_time_us().mean();
    detail.app_slot_us = core.task_manager().apps_time_us().mean();
    result.per_shard.push_back(detail);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double kSeconds = 5.0;
  bench::print_header("Fig. 8 -- master TTI-cycle utilization & memory (16 UEs/agent)");
  bench::print_note(
      "paper: only a small fraction of the 1 ms cycle used; core-component time\n"
      "grows with agents (RIB updater); memory grows with the RIB (~5-10 MB\n"
      "process-level; here the RIB data structure itself is reported).");

  std::printf("\n%8s %14s %14s %12s %12s %14s\n", "agents", "apps (us)", "core (us)",
              "idle (%)", "RIB (KB)", "updates/s");
  for (int agents = 0; agents <= 3; ++agents) {
    const auto load = agents == 0 ? run_empty(kSeconds) : run(agents, kSeconds);
    std::printf("%8d %14.2f %14.2f %12.1f %12.1f %14.0f\n", agents, load.apps_us, load.core_us,
                load.idle_fraction * 100.0, load.rib_kb,
                static_cast<double>(load.updates) / kSeconds);
  }
  std::printf(
      "\nShape check: core-component time and RIB size grow with the number of\n"
      "agents while the cycle stays almost entirely idle, as in the paper.\n");

  // ---- Part 2: worker-pool sweep ------------------------------------------
  const int kCycles = 600;
  const std::int64_t kStallUs = 100;
  bench::print_header("Worker sweep -- pipelined task manager (16 UEs/agent)");
  bench::print_note(
      "Standalone task manager; one priority-1 app per agent, each stalling\n"
      "100 us per cycle on a simulated external analytics/policy call, plus\n"
      "one monitoring app (priority 200). workers=0 is the original inline\n"
      "time-sliced loop. Host core count bounds CPU-parallel speedup; the\n"
      "gain measured here comes from overlapping the app-side stalls, which\n"
      "the single-threaded design serializes.");

  std::vector<SweepResult> results;
  std::printf("\n%8s %8s %14s %14s %14s %14s %14s\n", "workers", "agents", "cycles/s",
              "cycle (us)", "updater (us)", "app slot (us)", "publish (us)");
  for (const int agents : {2, 4, 8}) {
    double base_cps = 0.0;
    for (const int workers : {0, 1, 2, 4, 8}) {
      const auto r = run_sweep(workers, agents, kCycles, kStallUs);
      results.push_back(r);
      if (workers == 1) base_cps = r.cycles_per_sec;
      std::printf("%8d %8d %14.0f %14.1f %14.2f %14.1f %14.2f", r.workers, r.agents,
                  r.cycles_per_sec, r.mean_cycle_us, r.mean_updater_us, r.mean_app_slot_us,
                  r.mean_publish_us);
      if (workers > 1 && base_cps > 0.0) {
        std::printf("   (%.2fx vs 1 worker)", r.cycles_per_sec / base_cps);
      }
      std::printf("\n");
    }
  }

  // ---- Part 3: shard sweep ------------------------------------------------
  const int kShardAgents = 1024;
  const int kShardCycles = 150;
  const int kShardApps = 8;
  const std::int64_t kShardStallUs = 500;
  const int kReportPeriod = 4;
  bench::print_header("Shard sweep -- two-tier control plane (1024 agents, 8 analytics apps)");
  bench::print_note(
      "One process, one Coordinator over N ShardCores (1 app-slot worker\n"
      "each). 1024 simulated agents replay a periodic StatsReply (1/4 of the\n"
      "fleet per TTI); a fixed pool of 8 priority-1 analytics apps each\n"
      "stalls 500 us per cycle on a simulated external service call. Sharding\n"
      "partitions that app pool across shard app slots, so the stalls -- which\n"
      "a single master serializes -- overlap across shard workers; on a\n"
      "single-core host that overlap, not CPU parallelism, is the win.");

  std::vector<ShardSweepResult> shard_results;
  std::printf("\n%8s %8s %14s %14s %14s %16s\n", "shards", "agents", "cycles/s", "cycle (us)",
              "updates/cyc", "worst slot (us)");
  double single_master_cps = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const auto r = run_shard_sweep(shards, kShardAgents, kShardCycles, kShardApps, kShardStallUs,
                                   kReportPeriod);
    shard_results.push_back(r);
    if (shards == 1) single_master_cps = r.cycles_per_sec;
    double worst_slot = 0.0;
    for (const auto& d : r.per_shard) worst_slot = std::max(worst_slot, d.app_slot_us);
    std::printf("%8zu %8d %14.0f %14.1f %14.0f %16.1f", r.shards, r.agents, r.cycles_per_sec,
                r.mean_cycle_us, static_cast<double>(r.updates) / kShardCycles, worst_slot);
    if (shards > 1 && single_master_cps > 0.0) {
      std::printf("   (%.2fx vs 1 shard)", r.cycles_per_sec / single_master_cps);
    }
    std::printf("\n");
  }
  for (const auto& r : shard_results) {
    if (r.shards >= 4 && r.cycles_per_sec <= single_master_cps) {
      std::printf("WARNING: %zu shards did not beat the single master (%.0f <= %.0f cycles/s)\n",
                  r.shards, r.cycles_per_sec, single_master_cps);
    }
  }

  const char* json_path = argc > 1 ? argv[1] : "BENCH_fig8_workers.json";
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"fig8_worker_sweep\",\n"
       << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"cycles\": " << kCycles << ",\n  \"stall_us\": " << kStallUs << ",\n"
       << "  \"note\": \"per-agent priority-1 apps each stall stall_us on a simulated "
          "external service call per cycle; speedup = overlap of those stalls across "
          "workers (single-core host: CPU-bound work does not parallelize)\",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"workers\": " << r.workers << ", \"agents\": " << r.agents
         << ", \"cycles_per_sec\": " << static_cast<std::uint64_t>(r.cycles_per_sec)
         << ", \"mean_cycle_us\": " << r.mean_cycle_us
         << ", \"mean_updater_us\": " << r.mean_updater_us
         << ", \"mean_app_slot_us\": " << r.mean_app_slot_us
         << ", \"mean_snapshot_publish_us\": " << r.mean_publish_us
         << ", \"commands_flushed\": " << r.commands << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"shard_sweep\": {\n"
       << "    \"agents\": " << kShardAgents << ", \"cycles\": " << kShardCycles
       << ", \"apps\": " << kShardApps << ", \"stall_us\": " << kShardStallUs
       << ", \"report_period_ttis\": " << kReportPeriod << ",\n"
       << "    \"note\": \"fixed fleet + fixed app pool partitioned across N ShardCores "
          "under one Coordinator; speedup = overlap of app-slot stalls across shard "
          "workers\",\n"
       << "    \"results\": [\n";
  for (std::size_t i = 0; i < shard_results.size(); ++i) {
    const auto& r = shard_results[i];
    json << "      {\"shards\": " << r.shards << ", \"agents\": " << r.agents
         << ", \"cycles_per_sec\": " << static_cast<std::uint64_t>(r.cycles_per_sec)
         << ", \"mean_cycle_us\": " << r.mean_cycle_us << ", \"updates\": " << r.updates
         << ", \"per_shard\": [";
    for (std::size_t s = 0; s < r.per_shard.size(); ++s) {
      const auto& d = r.per_shard[s];
      json << (s > 0 ? ", " : "") << "{\"shard\": " << s << ", \"agents\": " << d.agents
           << ", \"updates\": " << d.updates << ", \"mean_updater_us\": " << d.updater_us
           << ", \"mean_app_slot_us\": " << d.app_slot_us << "}";
    }
    json << "]}" << (i + 1 < shard_results.size() ? "," : "") << "\n";
  }
  json << "    ]\n  }\n}\n";
  std::printf("\nJSON series written to %s\n", json_path);
  return 0;
}
