// Figure 8 reproduction: master controller resource usage vs number of
// connected agents (16 UEs each, per-TTI reporting, centralized scheduler
// app). Reports the measured per-cycle time of the core components (RIB
// updater slot) and the applications slot, the idle fraction of the 1 ms
// TTI cycle, and the memory footprint of the RIB.
//
// Part 2 sweeps the task manager's worker pool (0 = the original inline
// time-sliced loop, then 1/2/4/8 workers) against agent counts and emits
// the series as JSON (BENCH_fig8_workers.json) so the perf trajectory is
// tracked across revisions.
#include <chrono>
#include <fstream>
#include <thread>

#include "apps/monitoring.h"
#include "apps/remote_scheduler.h"
#include "bench/bench_common.h"
#include "controller/rib_snapshot.h"
#include "controller/task_manager.h"
#include "traffic/udp.h"

using namespace flexran;

namespace {

struct MasterLoad {
  double apps_us = 0.0;
  double core_us = 0.0;
  double idle_fraction = 0.0;
  double rib_kb = 0.0;
  std::uint64_t updates = 0;
};

MasterLoad run(int n_agents, double seconds) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>());
  testbed.master().add_app(std::make_unique<apps::MonitoringApp>(100));

  std::vector<std::unique_ptr<traffic::UdpCbrSource>> sources;
  for (int a = 0; a < n_agents; ++a) {
    testbed.add_enb(bench::basic_enb(static_cast<lte::EnbId>(a + 1)));
    for (int i = 0; i < 16; ++i) {
      const auto rnti =
          testbed.add_ue(static_cast<std::size_t>(a), bench::fixed_cqi_ue(8 + i % 8, 5 + i));
      sources.push_back(std::make_unique<traffic::UdpCbrSource>(
          testbed.sim(),
          [&testbed, rnti](std::uint32_t bytes) { (void)testbed.epc().downlink(rnti, bytes); },
          1.5));
      sources.back()->start();
    }
  }
  // When no agent exists the ticker still needs a driver for the master.
  testbed.run_seconds(seconds);

  MasterLoad load;
  const auto& tm = testbed.master().task_manager();
  load.apps_us = tm.apps_time_us().mean();
  load.core_us = tm.updater_time_us().mean();
  load.idle_fraction = tm.mean_idle_fraction();
  load.rib_kb = static_cast<double>(testbed.master().rib_bytes()) / 1024.0;
  load.updates = testbed.master().updates_applied();
  return load;
}

/// 0-agent case: the master alone, cycled manually.
MasterLoad run_empty(double seconds) {
  sim::Simulator simulator;
  ctrl::MasterController master(simulator, scenario::per_tti_master_config());
  master.add_app(std::make_unique<apps::RemoteSchedulerApp>());
  master.add_app(std::make_unique<apps::MonitoringApp>(100));
  sim::TtiTicker ticker(simulator);
  ticker.subscribe([&](std::int64_t) { master.run_cycle(); });
  ticker.start();
  simulator.run_until(sim::from_seconds(seconds));

  MasterLoad load;
  load.apps_us = master.task_manager().apps_time_us().mean();
  load.core_us = master.task_manager().updater_time_us().mean();
  load.idle_fraction = master.task_manager().mean_idle_fraction();
  load.rib_kb = static_cast<double>(master.rib_bytes()) / 1024.0;
  return load;
}

// ---------------------------------------------------------- worker sweep --

/// No-op command sink for the standalone task-manager sweep.
class SinkNorthbound : public ctrl::NorthboundApi {
 public:
  explicit SinkNorthbound(ctrl::SnapshotStore& store) : store_(&store) {}
  std::shared_ptr<const ctrl::RibSnapshot> rib_snapshot() const override {
    return store_->current();
  }
  sim::TimeUs now() const override { return 0; }
  std::int64_t agent_subframe(ctrl::AgentId) const override { return 0; }
  util::Status send_dl_mac_config(ctrl::AgentId, const proto::DlMacConfig&) override {
    return {};
  }
  util::Status send_ul_mac_config(ctrl::AgentId, const proto::UlMacConfig&) override {
    return {};
  }
  util::Status send_handover(ctrl::AgentId, const proto::HandoverCommand&) override { return {}; }
  util::Status send_abs_config(ctrl::AgentId, const proto::AbsConfig&) override { return {}; }
  util::Status send_carrier_restriction(ctrl::AgentId, const proto::CarrierRestriction&) override {
    return {};
  }
  util::Status send_drx_config(ctrl::AgentId, const proto::DrxConfig&) override { return {}; }
  util::Status send_scell_command(ctrl::AgentId, const proto::ScellCommand&) override {
    return {};
  }
  util::Status request_stats(ctrl::AgentId, const proto::StatsRequest&) override { return {}; }
  util::Status subscribe_events(ctrl::AgentId, std::vector<proto::EventType>, bool) override {
    return {};
  }
  util::Status push_vsf(ctrl::AgentId, const std::string&, const std::string&,
                        const std::string&) override {
    return {};
  }
  util::Status send_policy(ctrl::AgentId, const std::string&) override { return {}; }

 private:
  ctrl::SnapshotStore* store_;
};

/// Per-agent control app for the sweep: reads its agent's subtree from the
/// pinned snapshot, stalls for `stall_us` simulating a synchronous call to
/// an external analytics/policy service (the MEC pattern of Sec. 6.2 --
/// the kind of app-side blocking the paper's single-threaded app slot
/// serializes), and issues one batched command.
class StallApp final : public ctrl::App {
 public:
  StallApp(ctrl::AgentId agent, std::int64_t stall_us)
      : agent_(agent), stall_us_(stall_us), name_("stall-" + std::to_string(agent)) {}
  std::string_view name() const override { return name_; }
  int priority() const override { return 1; }
  void on_cycle(std::int64_t, ctrl::NorthboundApi& api) override {
    const auto snapshot = api.rib_snapshot();
    const auto* agent = snapshot->find_agent(agent_);
    if (agent != nullptr) {
      for (const auto& [cell_id, cell] : agent->cells) {
        (void)cell_id;
        for (const auto& [rnti, ue] : cell.ues) {
          (void)rnti;
          checksum_ += ue.stats.wb_cqi;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(stall_us_));
    (void)api.send_policy(agent_, "sweep");
  }
  std::uint64_t checksum() const { return checksum_; }

 private:
  ctrl::AgentId agent_;
  std::int64_t stall_us_;
  std::string name_;
  std::uint64_t checksum_ = 0;
};

/// Whole-RIB reader in the non-critical tier (monitoring analogue).
class SweepMonitorApp final : public ctrl::App {
 public:
  std::string_view name() const override { return "sweep-monitor"; }
  int priority() const override { return 200; }
  void on_cycle(std::int64_t, ctrl::NorthboundApi& api) override {
    const auto snapshot = api.rib_snapshot();
    for (const auto& [id, agent] : snapshot->agents()) {
      (void)id;
      for (const auto& [cell_id, cell] : agent->cells) {
        (void)cell_id;
        ues_seen_ += cell.ues.size();
      }
    }
  }

 private:
  std::uint64_t ues_seen_ = 0;
};

struct SweepResult {
  int workers = 0;
  int agents = 0;
  double cycles_per_sec = 0.0;
  double mean_cycle_us = 0.0;
  double mean_updater_us = 0.0;
  double mean_app_slot_us = 0.0;
  double mean_publish_us = 0.0;
  std::uint64_t commands = 0;
};

SweepResult run_sweep(int workers, int n_agents, int cycles, std::int64_t stall_us) {
  ctrl::Rib rib;
  for (ctrl::AgentId id = 1; id <= static_cast<ctrl::AgentId>(n_agents); ++id) {
    auto& agent = rib.agent(id);
    agent.id = id;
    agent.enb_id = id;
    auto& cell = agent.cells[id];
    cell.config.bandwidth_mhz = 10.0;
    for (lte::Rnti rnti = 70; rnti < 86; ++rnti) {  // 16 UEs per agent
      auto& ue = cell.ues[rnti];
      ue.rnti = rnti;
      ue.stats.wb_cqi = 10;
    }
  }

  ctrl::SnapshotStore store;
  util::RunningStats publish_us;
  std::set<ctrl::AgentId> all_dirty;
  for (ctrl::AgentId id = 1; id <= static_cast<ctrl::AgentId>(n_agents); ++id) {
    all_dirty.insert(id);
  }

  ctrl::TaskManagerConfig config;
  config.real_time = false;
  config.workers = workers;
  ctrl::TaskManager tm(
      config,
      // Updater slot: per-TTI stats churn on every agent (worst-case dirty
      // set), then the snapshot publish -- exactly what the master does.
      [&](std::int64_t) {
        for (ctrl::AgentId id = 1; id <= static_cast<ctrl::AgentId>(n_agents); ++id) {
          auto& agent = rib.agent(id);
          for (auto& [cell_id, cell] : agent.cells) {
            (void)cell_id;
            for (auto& [rnti, ue] : cell.ues) {
              (void)rnti;
              ue.stats.dl_bytes_delivered += 1500;
            }
          }
        }
        const auto start = std::chrono::steady_clock::now();
        store.publish(rib, all_dirty, /*structure_changed=*/store.current()->version() == 0);
        publish_us.add(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count());
        return static_cast<std::size_t>(n_agents);
      },
      nullptr);
  tm.set_snapshot_source([&] { return store.current(); }, [] { return sim::TimeUs{0}; });

  SinkNorthbound api(store);
  std::vector<std::unique_ptr<ctrl::App>> apps;
  for (ctrl::AgentId id = 1; id <= static_cast<ctrl::AgentId>(n_agents); ++id) {
    apps.push_back(std::make_unique<StallApp>(id, stall_us));
  }
  apps.push_back(std::make_unique<SweepMonitorApp>());
  for (auto& app : apps) tm.add_app(app.get(), api);

  const auto start = std::chrono::steady_clock::now();
  for (int cycle = 0; cycle < cycles; ++cycle) tm.run_cycle(cycle, api);
  tm.quiesce();
  const double wall_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start).count();

  SweepResult result;
  result.workers = workers;
  result.agents = n_agents;
  result.cycles_per_sec = cycles / (wall_us / 1e6);
  result.mean_cycle_us = wall_us / cycles;
  result.mean_updater_us = tm.updater_time_us().mean();
  result.mean_app_slot_us = tm.apps_time_us().mean();
  result.mean_publish_us = publish_us.mean();
  result.commands = tm.commands_flushed();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double kSeconds = 5.0;
  bench::print_header("Fig. 8 -- master TTI-cycle utilization & memory (16 UEs/agent)");
  bench::print_note(
      "paper: only a small fraction of the 1 ms cycle used; core-component time\n"
      "grows with agents (RIB updater); memory grows with the RIB (~5-10 MB\n"
      "process-level; here the RIB data structure itself is reported).");

  std::printf("\n%8s %14s %14s %12s %12s %14s\n", "agents", "apps (us)", "core (us)",
              "idle (%)", "RIB (KB)", "updates/s");
  for (int agents = 0; agents <= 3; ++agents) {
    const auto load = agents == 0 ? run_empty(kSeconds) : run(agents, kSeconds);
    std::printf("%8d %14.2f %14.2f %12.1f %12.1f %14.0f\n", agents, load.apps_us, load.core_us,
                load.idle_fraction * 100.0, load.rib_kb,
                static_cast<double>(load.updates) / kSeconds);
  }
  std::printf(
      "\nShape check: core-component time and RIB size grow with the number of\n"
      "agents while the cycle stays almost entirely idle, as in the paper.\n");

  // ---- Part 2: worker-pool sweep ------------------------------------------
  const int kCycles = 600;
  const std::int64_t kStallUs = 100;
  bench::print_header("Worker sweep -- pipelined task manager (16 UEs/agent)");
  bench::print_note(
      "Standalone task manager; one priority-1 app per agent, each stalling\n"
      "100 us per cycle on a simulated external analytics/policy call, plus\n"
      "one monitoring app (priority 200). workers=0 is the original inline\n"
      "time-sliced loop. Host core count bounds CPU-parallel speedup; the\n"
      "gain measured here comes from overlapping the app-side stalls, which\n"
      "the single-threaded design serializes.");

  std::vector<SweepResult> results;
  std::printf("\n%8s %8s %14s %14s %14s %14s %14s\n", "workers", "agents", "cycles/s",
              "cycle (us)", "updater (us)", "app slot (us)", "publish (us)");
  for (const int agents : {2, 4, 8}) {
    double base_cps = 0.0;
    for (const int workers : {0, 1, 2, 4, 8}) {
      const auto r = run_sweep(workers, agents, kCycles, kStallUs);
      results.push_back(r);
      if (workers == 1) base_cps = r.cycles_per_sec;
      std::printf("%8d %8d %14.0f %14.1f %14.2f %14.1f %14.2f", r.workers, r.agents,
                  r.cycles_per_sec, r.mean_cycle_us, r.mean_updater_us, r.mean_app_slot_us,
                  r.mean_publish_us);
      if (workers > 1 && base_cps > 0.0) {
        std::printf("   (%.2fx vs 1 worker)", r.cycles_per_sec / base_cps);
      }
      std::printf("\n");
    }
  }

  const char* json_path = argc > 1 ? argv[1] : "BENCH_fig8_workers.json";
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"fig8_worker_sweep\",\n"
       << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"cycles\": " << kCycles << ",\n  \"stall_us\": " << kStallUs << ",\n"
       << "  \"note\": \"per-agent priority-1 apps each stall stall_us on a simulated "
          "external service call per cycle; speedup = overlap of those stalls across "
          "workers (single-core host: CPU-bound work does not parallelize)\",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"workers\": " << r.workers << ", \"agents\": " << r.agents
         << ", \"cycles_per_sec\": " << static_cast<std::uint64_t>(r.cycles_per_sec)
         << ", \"mean_cycle_us\": " << r.mean_cycle_us
         << ", \"mean_updater_us\": " << r.mean_updater_us
         << ", \"mean_app_slot_us\": " << r.mean_app_slot_us
         << ", \"mean_snapshot_publish_us\": " << r.mean_publish_us
         << ", \"commands_flushed\": " << r.commands << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nJSON series written to %s\n", json_path);
  return 0;
}
