// Table 2 reproduction: per-CQI maximum TCP throughput and maximum
// sustainable DASH bitrate, measured over the full platform (LTE stack +
// agent + TCP model + DASH client).
//
// For each CQI level the bench (a) runs a persistent TCP download and
// reports steady-state goodput, and (b) probes the 4K bitrate ladder,
// reporting the highest representation that plays back with zero buffer
// freezes -- exactly how the paper builds its Table 2.
#include "bench/bench_common.h"
#include "scenario/dash_session.h"

using namespace flexran;

namespace {

double max_tcp_throughput(int cqi, double seconds) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(bench::basic_enb());
  const auto rnti = testbed.add_ue(0, bench::fixed_cqi_ue(cqi));
  testbed.run_ttis(60);

  stack::EnodebDataPlane* dp = enb.data_plane.get();
  traffic::TcpFlow flow(
      testbed.sim(),
      [&testbed, rnti](std::uint32_t bytes) { (void)testbed.epc().downlink(rnti, bytes); },
      [dp, rnti]() -> std::uint32_t {
        const auto* ue = dp->ue(rnti);
        return ue != nullptr ? ue->dl_queue.total_bytes() : 0;
      });
  testbed.add_delivery_listener(
      0, [&flow, rnti](lte::Rnti r, std::uint32_t bytes, lte::Direction dir) {
        if (r == rnti && dir == lte::Direction::downlink) flow.on_delivered(bytes);
      });
  testbed.on_tti([&flow](std::int64_t tti) { flow.on_tti(tti); });
  flow.start_persistent();
  testbed.run_seconds(seconds);
  return flow.mean_goodput_mbps(seconds);
}

/// True if a stream pinned at `bitrate` plays `seconds` without freezing.
bool sustainable(int cqi, double bitrate_mbps, double seconds) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  testbed.add_enb(bench::basic_enb());
  const auto rnti = testbed.add_ue(0, bench::fixed_cqi_ue(cqi));
  testbed.run_ttis(60);

  traffic::DashClientConfig config;
  config.mode = traffic::AbrMode::assisted;
  traffic::DashVideo video;
  video.bitrates_mbps = {bitrate_mbps};
  scenario::DashSession session(testbed, 0, rnti, video, config);
  session.client().set_bitrate_cap_mbps(bitrate_mbps);
  session.start();
  testbed.run_seconds(seconds);
  return session.client().freeze_count() == 0 && session.client().segments_downloaded() > 10;
}

double max_sustainable_bitrate(int cqi, double seconds) {
  const auto ladder = traffic::paper_video_4k().bitrates_mbps;
  double best = 0.0;
  for (const double bitrate : ladder) {
    if (sustainable(cqi, bitrate, seconds)) {
      best = bitrate;
    } else {
      break;  // ladder is ascending
    }
  }
  // Refine below the lowest rung for very poor channels.
  if (best == 0.0) {
    for (const double bitrate : {0.4, 0.7, 1.0, 1.4, 2.0}) {
      if (sustainable(cqi, bitrate, seconds)) best = bitrate;
    }
  }
  return best;
}

}  // namespace

int main() {
  const double kSeconds = 20.0;
  bench::print_header("Table 2 -- max TCP throughput and max sustainable DASH bitrate per CQI");
  bench::print_note(
      "paper (testbed measurements):  CQI 2: 1.63 / 1.4   CQI 3: 2.2 / 2.0\n"
      "                               CQI 4: 3.3 / 2.9    CQI 10: 15 / 7.3  (Mb/s)\n"
      "our PHY calibration charges more control overhead per PRB (DESIGN.md), so\n"
      "absolute numbers sit lower; the target is the monotone shape and the\n"
      "TCP-to-sustainable-bitrate gap that widens with CQI.");

  std::printf("\n%6s %20s %28s %8s\n", "CQI", "TCP tput (Mb/s)", "max sustainable (Mb/s)",
              "ratio");
  for (const int cqi : {2, 3, 4, 10, 15}) {
    const double tcp = max_tcp_throughput(cqi, kSeconds);
    const double bitrate = max_sustainable_bitrate(cqi, kSeconds);
    std::printf("%6d %20.2f %28.2f %8.2f\n", cqi, tcp, bitrate,
                bitrate > 0 ? tcp / bitrate : 0.0);
  }
  std::printf(
      "\nAs in the paper, TCP throughput must exceed the video bitrate to sustain\n"
      "playback (ratio > 1 at every CQI). Deviation: the paper's margin grows to\n"
      "~2x at CQI 10 because the real TCP sawtooth over the radio link is deep;\n"
      "our NewReno model recovers faster, so the margin stays near ~1.2x\n"
      "(recorded in EXPERIMENTS.md).\n");
  return 0;
}
