// Tests for the WiFi control module -- the Sec. 7.2 technology-agnosticism
// demonstration: a non-LTE data plane driven by the SAME VSF factory,
// cache, CMI, and policy-reconfiguration machinery as the LTE agent.
#include <gtest/gtest.h>

#include "agent/schedulers.h"
#include "wifi/control.h"

namespace flexran::wifi {
namespace {

// ------------------------------------------------------------- data plane --

TEST(WifiAp, FairAirtimeSplitsSlot) {
  sim::Simulator simulator;
  WifiApDataPlane ap(simulator);
  const auto fast = ap.add_station({240.0});
  const auto slow = ap.add_station({60.0});

  FairAirtimeVsf fair;
  for (int s = 0; s < 100; ++s) {
    ap.enqueue_dl(fast, 50'000);  // keep both saturated
    ap.enqueue_dl(slow, 50'000);
    ap.apply_airtime(fair.schedule(ap.station_view(), s));
  }
  // Equal airtime -> throughput proportional to PHY rate (4:1).
  const double ratio = static_cast<double>(ap.delivered_bytes(fast)) /
                       static_cast<double>(ap.delivered_bytes(slow));
  EXPECT_NEAR(ratio, 4.0, 0.2);
}

TEST(WifiAp, ContentionEfficiencyDegrades) {
  EXPECT_DOUBLE_EQ(WifiApDataPlane::contention_efficiency(0), 1.0);
  EXPECT_DOUBLE_EQ(WifiApDataPlane::contention_efficiency(1), 1.0);
  EXPECT_LT(WifiApDataPlane::contention_efficiency(4),
            WifiApDataPlane::contention_efficiency(2));
  EXPECT_GE(WifiApDataPlane::contention_efficiency(50), 0.6);
}

TEST(WifiAp, AllocationClampsAndIgnoresIdle) {
  sim::Simulator simulator;
  WifiApDataPlane ap(simulator);
  const auto a = ap.add_station({120.0});
  const auto idle = ap.add_station({120.0});
  ap.enqueue_dl(a, 1'000'000);

  AirtimeAllocation greedy;
  greedy[a] = 5.0;      // clamped to 1.0
  greedy[idle] = 0.5;   // no queue -> ignored
  greedy[999] = 0.5;    // unknown station -> ignored
  const auto delivered = ap.apply_airtime(greedy);
  // One slot at 120 Mb/s, single contender: 15000 bytes.
  EXPECT_NEAR(delivered, 15'000, 200);
  EXPECT_EQ(ap.delivered_bytes(idle), 0u);
}

// ------------------------------------------- same machinery, new technology --

TEST(WifiControl, SameVsfMachineryDrivesWifi) {
  register_wifi_vsfs();
  // Same factory, same cache type, same policy path as the LTE agent.
  agent::VsfCache cache;
  ASSERT_TRUE(cache.store(WifiControlModule::kName, WifiControlModule::kAirtimeSlot, "fair").ok());
  ASSERT_TRUE(
      cache.store(WifiControlModule::kName, WifiControlModule::kAirtimeSlot, "weighted").ok());
  WifiControlModule wifi(cache);
  EXPECT_EQ(wifi.airtime_scheduler(), nullptr);

  const std::array<agent::ControlModule*, 1> modules = {&wifi};
  ASSERT_TRUE(agent::apply_policy_yaml(
                  "wifi_mac:\n  airtime_scheduler:\n    behavior: fair\n", modules)
                  .ok());
  ASSERT_NE(wifi.airtime_scheduler(), nullptr);
  EXPECT_EQ(wifi.active_implementation(WifiControlModule::kAirtimeSlot), "fair");

  // Policy reconfiguration swaps behavior and sets technology-specific
  // parameters, exactly as Fig. 3 does for the LTE MAC.
  const char* policy =
      "wifi_mac:\n"
      "  airtime_scheduler:\n"
      "    behavior: weighted\n"
      "    parameters:\n"
      "      weights:\n"
      "        - station: 1\n"
      "          weight: 3\n"
      "        - station: 2\n"
      "          weight: 1\n";
  ASSERT_TRUE(agent::apply_policy_yaml(policy, modules).ok());
  EXPECT_EQ(wifi.active_implementation(WifiControlModule::kAirtimeSlot), "weighted");

  // An LTE scheduler registered under the WiFi slot's name still cannot be
  // linked into it: the CMI type check rejects it.
  agent::VsfFactory::instance().register_implementation(
      "wifi_mac", "airtime_scheduler", "lte_rr",
      [] { return std::make_unique<agent::RoundRobinDlVsf>(); });
  ASSERT_TRUE(cache.store("wifi_mac", "airtime_scheduler", "lte_rr").ok());
  EXPECT_FALSE(agent::apply_policy_yaml(
                   "wifi_mac:\n  airtime_scheduler:\n    behavior: lte_rr\n", modules)
                   .ok());
}

TEST(WifiControl, WeightedPolicyShapesThroughput) {
  register_wifi_vsfs();
  sim::Simulator simulator;
  WifiApDataPlane ap(simulator);
  const auto premium = ap.add_station({120.0});
  const auto basic = ap.add_station({120.0});

  agent::VsfCache cache;
  ASSERT_TRUE(
      cache.store(WifiControlModule::kName, WifiControlModule::kAirtimeSlot, "weighted").ok());
  WifiControlModule wifi(cache);
  const std::array<agent::ControlModule*, 1> modules = {&wifi};
  ASSERT_TRUE(agent::apply_policy_yaml(
                  "wifi_mac:\n"
                  "  airtime_scheduler:\n"
                  "    behavior: weighted\n"
                  "    parameters:\n"
                  "      weights:\n"
                  "        - station: 1\n"
                  "          weight: 3\n"
                  "        - station: 2\n"
                  "          weight: 1\n",
                  modules)
                  .ok());

  ap.set_scheduler([&](std::int64_t slot) {
    return wifi.airtime_scheduler()->schedule(ap.station_view(), slot);
  });
  for (int s = 0; s < 200; ++s) {
    ap.enqueue_dl(premium, 20'000);
    ap.enqueue_dl(basic, 20'000);
    ap.slot(s);
  }
  const double ratio = static_cast<double>(ap.delivered_bytes(premium)) /
                       static_cast<double>(ap.delivered_bytes(basic));
  EXPECT_NEAR(ratio, 3.0, 0.3);
}

TEST(WifiControl, WeightedParameterValidation) {
  WeightedAirtimeVsf vsf;
  EXPECT_FALSE(vsf.set_parameter("bogus", util::YamlNode::scalar("1")).ok());
  EXPECT_FALSE(vsf.set_parameter("weights", util::YamlNode::scalar("1")).ok());
  auto missing = util::parse_yaml("w:\n  - station: 1\n").value();
  EXPECT_FALSE(vsf.set_parameter("weights", *missing.find("w")).ok());
  auto negative = util::parse_yaml("w:\n  - station: 1\n    weight: -2\n").value();
  EXPECT_FALSE(vsf.set_parameter("weights", *negative.find("w")).ok());
}

}  // namespace
}  // namespace flexran::wifi
