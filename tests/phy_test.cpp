#include <gtest/gtest.h>

#include "phy/channel.h"
#include "phy/error_model.h"
#include "phy/radio_env.h"

namespace flexran::phy {
namespace {

using sim::from_seconds;
using sim::TimeUs;

// -------------------------------------------------------------- Channels --

TEST(FixedCqiChannel, ReportsExactCqi) {
  FixedCqiChannel channel(7);
  EXPECT_EQ(channel.cqi(0), 7);
  EXPECT_EQ(channel.cqi(from_seconds(100)), 7);
  channel.set_cqi(12);
  EXPECT_EQ(channel.cqi(0), 12);
}

TEST(FixedCqiChannel, SinrConsistentWithCqi) {
  for (int cqi = 1; cqi <= 15; ++cqi) {
    FixedCqiChannel channel(cqi);
    EXPECT_EQ(lte::sinr_db_to_cqi(channel.sinr_db(0)), cqi);
  }
}

TEST(ScheduledCqiChannel, FollowsSchedule) {
  ScheduledCqiChannel channel({{0, 3}, {from_seconds(10), 2}, {from_seconds(20), 3}});
  EXPECT_EQ(channel.cqi(from_seconds(5)), 3);
  EXPECT_EQ(channel.cqi(from_seconds(10)), 2);
  EXPECT_EQ(channel.cqi(from_seconds(15)), 2);
  EXPECT_EQ(channel.cqi(from_seconds(25)), 3);
}

TEST(ScheduledCqiChannel, BeforeFirstStepUsesFirstValue) {
  ScheduledCqiChannel channel({{from_seconds(10), 9}});
  EXPECT_EQ(channel.cqi(0), 9);
}

TEST(ScheduledCqiChannel, SquareWaveToggles) {
  auto channel = ScheduledCqiChannel::square_wave(10, 4, from_seconds(5), from_seconds(30));
  EXPECT_EQ(channel->cqi(from_seconds(1)), 10);
  EXPECT_EQ(channel->cqi(from_seconds(6)), 4);
  EXPECT_EQ(channel->cqi(from_seconds(11)), 10);
  EXPECT_EQ(channel->cqi(from_seconds(16)), 4);
}

TEST(TraceCqiChannel, ReplaysHoldsAndLoops) {
  TraceCqiChannel holding({5, 10, 15}, from_seconds(1), /*loop=*/false);
  EXPECT_EQ(holding.cqi(0), 5);
  EXPECT_EQ(holding.cqi(from_seconds(1.5)), 10);
  EXPECT_EQ(holding.cqi(from_seconds(2.1)), 15);
  EXPECT_EQ(holding.cqi(from_seconds(99)), 15);  // holds last sample

  TraceCqiChannel looping({5, 10, 15}, from_seconds(1), /*loop=*/true);
  EXPECT_EQ(looping.cqi(from_seconds(3.2)), 5);  // wraps around
  EXPECT_EQ(looping.cqi(from_seconds(4.5)), 10);
  EXPECT_EQ(lte::sinr_db_to_cqi(looping.sinr_db(from_seconds(4.5))), 10);
}

TEST(FadingChannel, DeterministicForSeed) {
  FadingChannel::Config config;
  config.seed = 42;
  FadingChannel a(config);
  FadingChannel b(config);
  for (TimeUs t = 0; t < from_seconds(2); t += from_seconds(0.05)) {
    EXPECT_DOUBLE_EQ(a.sinr_db(t), b.sinr_db(t));
  }
}

TEST(FadingChannel, StaysNearMean) {
  FadingChannel::Config config;
  config.mean_sinr_db = 18.0;
  config.stddev_db = 3.0;
  FadingChannel channel(config);
  double sum = 0.0;
  int n = 0;
  for (TimeUs t = 0; t < from_seconds(60); t += from_seconds(0.02)) {
    const double s = channel.sinr_db(t);
    EXPECT_GT(s, 18.0 - 6 * 3.0);
    EXPECT_LT(s, 18.0 + 6 * 3.0);
    sum += s;
    ++n;
  }
  EXPECT_NEAR(sum / n, 18.0, 1.0);
}

TEST(FadingChannel, ConstantWithinCoherenceBlock) {
  FadingChannel::Config config;
  config.coherence = from_seconds(0.02);
  FadingChannel channel(config);
  const double a = channel.sinr_db(from_seconds(0.021));
  const double b = channel.sinr_db(from_seconds(0.030));
  EXPECT_DOUBLE_EQ(a, b);
}

// ----------------------------------------------------------- Radio env ----

TEST(RadioEnv, PathlossIncreasesWithDistance) {
  EXPECT_LT(pathloss_db(0.1), pathloss_db(0.5));
  EXPECT_LT(pathloss_db(0.5), pathloss_db(2.0));
  // 3GPP macro formula sanity: 1 km -> 128.1 dB.
  EXPECT_NEAR(pathloss_db(1.0), 128.1, 1e-9);
}

TEST(RadioEnv, SinrWithoutInterferenceIsSnr) {
  UeRadioProfile profile;
  profile.serving_cell = 1;
  profile.rx_power_dbm[1] = -80.0;
  profile.noise_dbm = -97.0;
  EXPECT_NEAR(profile.sinr_db({}), 17.0, 1e-9);
}

TEST(RadioEnv, ActiveInterfererDegradesSinr) {
  UeRadioProfile profile;
  profile.serving_cell = 1;
  profile.rx_power_dbm[1] = -80.0;
  profile.rx_power_dbm[2] = -85.0;  // strong macro interferer
  profile.noise_dbm = -97.0;

  const double clean = profile.sinr_db({});
  const double interfered = profile.sinr_db({2});
  EXPECT_GT(clean, interfered);
  // Interference-limited: SINR ~ S - I = 5 dB (noise adds a little).
  EXPECT_NEAR(interfered, 4.7, 0.5);
}

TEST(RadioEnv, OnlyListedInterferersCount) {
  UeRadioProfile profile;
  profile.serving_cell = 1;
  profile.rx_power_dbm[1] = -80.0;
  profile.rx_power_dbm[2] = -85.0;
  profile.rx_power_dbm[3] = -88.0;
  const double one = profile.sinr_db({2});
  const double both = profile.sinr_db({2, 3});
  EXPECT_GT(one, both);
  // The serving cell never interferes with itself.
  EXPECT_DOUBLE_EQ(profile.sinr_db({1}), profile.sinr_db({}));
}

TEST(RadioEnv, FromDistancesBuilder) {
  const auto profile = UeRadioProfile::from_distances(
      /*serving=*/2, kPicoTxPowerDbm, 0.05, {{1, {kMacroTxPowerDbm, 0.4}}});
  EXPECT_EQ(profile.serving_cell, 2u);
  ASSERT_TRUE(profile.rx_power_dbm.contains(1));
  ASSERT_TRUE(profile.rx_power_dbm.contains(2));
  // Close pico serves stronger than far macro interferes.
  EXPECT_GT(profile.rx_power_dbm.at(2), profile.rx_power_dbm.at(1));
}

TEST(RadioEnv, TransmissionTracking) {
  RadioEnvironment env;
  EXPECT_FALSE(env.transmitting(1));
  env.set_transmitting(1, true);
  env.set_transmitting(2, true);
  EXPECT_TRUE(env.transmitting(1));
  env.set_transmitting(1, false);
  EXPECT_FALSE(env.transmitting(1));
  EXPECT_TRUE(env.transmitting(2));
  env.clear();
  EXPECT_FALSE(env.transmitting(2));
}

TEST(RadioEnv, EicicGeometryShape) {
  // The Fig. 10 setup in miniature: a small-cell UE near a pico, interfered
  // by a macro. Muting the macro (ABS) must lift the UE's CQI substantially.
  const auto profile = UeRadioProfile::from_distances(
      /*serving=*/2, kPicoTxPowerDbm, 0.08, {{1, {kMacroTxPowerDbm, 0.15}}});
  RadioEnvironment env;
  env.set_transmitting(1, true);
  const int cqi_interfered = lte::sinr_db_to_cqi(env.sinr_db(profile));
  env.set_transmitting(1, false);
  const int cqi_abs = lte::sinr_db_to_cqi(env.sinr_db(profile));
  EXPECT_GT(cqi_abs, cqi_interfered + 3);
}

// ----------------------------------------------------------- Error model --

TEST(ErrorModel, MatchedMcsHasAboutTenPercentBler) {
  ErrorModel model(5);
  const int cqi = 9;
  const int mcs = lte::cqi_to_mcs(cqi);
  int failures = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!model.transport_block_ok(mcs, cqi)) ++failures;
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.10, 0.02);
}

TEST(ErrorModel, ConservativeMcsAlwaysDecodes) {
  ErrorModel model(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(model.transport_block_ok(lte::cqi_to_mcs(5), /*actual_cqi=*/10));
  }
}

TEST(ErrorModel, RetransmissionsImproveDecodeProbability) {
  ErrorModel model(5);
  const int cqi = 8;
  const int aggressive_mcs = lte::cqi_to_mcs(cqi) + 2;
  int first_tx_fail = 0;
  int third_tx_fail = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!model.transport_block_ok(aggressive_mcs, cqi, 0)) ++first_tx_fail;
    if (!model.transport_block_ok(aggressive_mcs, cqi, 2)) ++third_tx_fail;
  }
  EXPECT_GT(first_tx_fail, 2 * third_tx_fail);
}

TEST(ErrorModel, ZeroCqiNeverDecodes) {
  ErrorModel model(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(model.transport_block_ok(0, /*actual_cqi=*/0));
  }
}

}  // namespace
}  // namespace flexran::phy
