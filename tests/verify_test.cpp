// Runtime invariant monitor + deterministic chaos fuzzer
// (docs/chaos_fuzzing.md): clean runs stay clean, a deliberately
// re-introduced defect is caught and named, trap mode aborts with a
// trace, generation is bit-deterministic in the seed, and a violating
// schedule minimizes to a standalone repro that still violates when
// parsed back and re-run.
#include <gtest/gtest.h>

#include <string>

#include "scenario/config.h"
#include "verify/fuzzer.h"
#include "verify/invariants.h"

namespace flexran {
namespace {

// A small sharded chaos scenario: fast enough for a unit test, busy
// enough (kill + recovery) that every invariant's inputs actually move.
scenario::ScenarioSpec sharded_spec(const std::string& invariants,
                                    const std::string& defect = "") {
  const std::string yaml = R"(duration_s: 2
stats_period_ttis: 2
shards: 2
agent_timeout_ms: 50
agent_disconnect_timeout_ms: 200
request_timeout_ms: 30
master_recovery: true
resync_tokens_per_s: 50
warm_checkpoint: true
checkpoint_period_s: 0.2
invariants: )" + invariants +
                           (defect.empty() ? "" : "\ndefect: " + defect) + R"(
enbs:
  - enb_id: 1
    shard: 0
  - enb_id: 2
    shard: 0
  - enb_id: 3
    shard: 1
ues:
  - enb: 1
    cqi: 12
faults:
  - at_s: 0.3
    kind: duplicate
    enb: -1
    count: 4
  - at_s: 0.5
    kind: shard_kill
    shard: 0
)";
  auto spec = scenario::parse_scenario(yaml);
  EXPECT_TRUE(spec.ok()) << (spec.ok() ? "" : spec.error().message);
  return *spec;
}

TEST(InvariantMonitor, CleanShardedChaosRunHasNoViolations) {
  const auto summary = scenario::run_scenario(sharded_spec("log"));
  EXPECT_GT(summary.invariant_checks, 0u);
  std::string details;
  for (const auto& line : summary.invariant_details) details += line + "\n";
  EXPECT_EQ(summary.invariant_violations, 0u) << details;
  EXPECT_EQ(summary.agents_up, summary.agents_total);
}

TEST(InvariantMonitor, OffModeRunsNoChecks) {
  const auto summary = scenario::run_scenario(sharded_spec("off"));
  EXPECT_EQ(summary.invariant_checks, 0u);
}

TEST(InvariantMonitor, StaleCompositeDefectIsCaughtAndNamed) {
  const auto summary = scenario::run_scenario(sharded_spec("log", "stale_composite"));
  EXPECT_GT(summary.invariant_violations, 0u);
  ASSERT_FALSE(summary.invariant_details.empty());
  EXPECT_NE(summary.invariant_details.front().find("composite_union"), std::string::npos)
      << summary.invariant_details.front();
}

TEST(InvariantMonitorDeathTest, TrapModeAbortsWithTrace) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(scenario::run_scenario(sharded_spec("trap", "stale_composite")),
               "INVARIANT TRAP");
}

TEST(InvariantMonitor, ParseModeRejectsUnknownNames) {
  EXPECT_TRUE(verify::parse_mode("trap").ok());
  EXPECT_FALSE(verify::parse_mode("tarp").ok());
  EXPECT_FALSE(scenario::parse_scenario("duration_s: 1\ninvariants: loud\nenbs:\n"
                                        "  - enb_id: 1\n")
                   .ok());
  EXPECT_FALSE(scenario::parse_scenario("duration_s: 1\ndefect: off_by_one\nenbs:\n"
                                        "  - enb_id: 1\n")
                   .ok());
}

// ------------------------------------------------------------------ fuzzer --

TEST(ChaosFuzzer, GenerationIsDeterministicInTheSeed) {
  verify::FuzzConfig config;
  config.seed = 11;
  const auto a = verify::generate_scenario(config);
  const auto b = verify::generate_scenario(config);
  EXPECT_EQ(scenario::scenario_to_yaml(a), scenario::scenario_to_yaml(b));
  config.seed = 12;
  const auto c = verify::generate_scenario(config);
  EXPECT_NE(scenario::scenario_to_yaml(a), scenario::scenario_to_yaml(c));
}

TEST(ChaosFuzzer, GeneratedSpecsRoundTripThroughYaml) {
  for (std::uint64_t seed : {1ull, 4ull, 9ull}) {
    verify::FuzzConfig config;
    config.seed = seed;
    const auto spec = verify::generate_scenario(config);
    const auto yaml = scenario::scenario_to_yaml(spec);
    auto reparsed = scenario::parse_scenario(yaml);
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().message << "\n" << yaml;
    // Emit(parse(emit(spec))) is a fixed point: every field the fuzzer
    // generates survives the round trip exactly.
    EXPECT_EQ(scenario::scenario_to_yaml(*reparsed), yaml);
    EXPECT_EQ(reparsed->seed, spec.seed);
    EXPECT_EQ(reparsed->shards, spec.shards);
    ASSERT_EQ(reparsed->faults.size(), spec.faults.size());
    for (std::size_t i = 0; i < spec.faults.size(); ++i) {
      EXPECT_EQ(reparsed->faults[i].kind, spec.faults[i].kind);
      EXPECT_DOUBLE_EQ(reparsed->faults[i].at_s, spec.faults[i].at_s);
      EXPECT_EQ(reparsed->faults[i].shard, spec.faults[i].shard);
    }
  }
}

TEST(ChaosFuzzer, GeneratedSchedulesKeepASurvivingShard) {
  // Structural guarantees over many seeds, without running anything:
  // shard-fatal faults never exhaust the fleet, crashes always restart,
  // and every fault fires inside the settle window.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    verify::FuzzConfig config;
    config.seed = seed;
    const auto spec = verify::generate_scenario(config);
    std::size_t fatal = 0;
    for (const auto& fault : spec.faults) {
      EXPECT_GE(fault.at_s, 0.2);
      EXPECT_LE(fault.at_s, spec.duration_s - 2.2 + 1e-9);
      if (fault.kind == scenario::FaultKind::shard_kill ||
          fault.kind == scenario::FaultKind::shard_drain) {
        ++fatal;
        EXPECT_GE(fault.shard, 0);
      }
      if (fault.kind == scenario::FaultKind::crash) EXPECT_GT(fault.duration_s, 0.0);
    }
    EXPECT_LT(fatal, spec.shards) << "seed " << seed << " left no survivor";
  }
}

TEST(ChaosFuzzer, CleanSeedPassesEndToEnd) {
  verify::FuzzConfig config;
  config.seed = 2;
  const auto result = verify::fuzz_seed(config);
  std::string reasons;
  for (const auto& reason : result.reasons) reasons += reason + "\n";
  EXPECT_FALSE(result.violated) << reasons;
  EXPECT_GT(result.invariant_checks, 0u);
  EXPECT_TRUE(result.repro.empty());
}

TEST(ChaosFuzzer, DefectIsCaughtMinimizedAndReproReplays) {
  verify::FuzzConfig config;
  config.seed = 3;
  config.duration_s = 3.0;
  config.max_faults = 2;
  config.defect = "stale_composite";
  const auto result = verify::fuzz_seed(config);
  ASSERT_TRUE(result.violated);
  // The defect violates with no chaos at all, so minimization strips the
  // schedule to nothing -- the repro is the topology alone.
  EXPECT_TRUE(result.minimized.faults.empty());
  ASSERT_FALSE(result.repro.empty());

  // The repro is a standalone scenario document: parse it back, run it,
  // and it must still violate (this is exactly what
  // `flexran-sim repro.yaml --check` does).
  auto reparsed = scenario::parse_scenario(result.repro);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  EXPECT_EQ(reparsed->defect, "stale_composite");
  EXPECT_GE(reparsed->shards, 2u);
  const auto verdict = verify::run_fuzz_spec(*reparsed);
  EXPECT_TRUE(verdict.violated);
  EXPECT_GT(verdict.invariant_violations, 0u);
}

}  // namespace
}  // namespace flexran
