#include <gtest/gtest.h>

#include "scenario/config.h"
#include "scenario/metrics.h"

namespace flexran::scenario {
namespace {

// ----------------------------------------------------------------- metrics --

TEST(Metrics, TotalsByUeEnbAndDirection) {
  Metrics metrics;
  metrics.record(1, 70, lte::Direction::downlink, 1000);
  metrics.record(1, 70, lte::Direction::downlink, 500);
  metrics.record(1, 71, lte::Direction::downlink, 200);
  metrics.record(1, 70, lte::Direction::uplink, 50);
  metrics.record(2, 72, lte::Direction::downlink, 900);

  EXPECT_EQ(metrics.total_bytes(1, 70, lte::Direction::downlink), 1500u);
  EXPECT_EQ(metrics.total_bytes(1, 70, lte::Direction::uplink), 50u);
  EXPECT_EQ(metrics.total_bytes_enb(1, lte::Direction::downlink), 1700u);
  EXPECT_EQ(metrics.total_bytes_all(lte::Direction::downlink), 2600u);
  EXPECT_EQ(metrics.total_bytes(9, 9, lte::Direction::downlink), 0u);
}

TEST(Metrics, WindowSeriesIncludeZeroRateGaps) {
  Metrics metrics;
  metrics.record(1, 70, lte::Direction::downlink, 125'000);  // 1 Mb over 1 s
  metrics.sample_window(sim::from_seconds(1.0));
  // Nothing delivered in the second window.
  metrics.sample_window(sim::from_seconds(2.0));
  const auto* series = metrics.series(1, 70, lte::Direction::downlink);
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->points().size(), 2u);
  EXPECT_NEAR(series->points()[0].value, 1.0, 0.01);
  EXPECT_DOUBLE_EQ(series->points()[1].value, 0.0);
}

TEST(Metrics, MbpsHelper) {
  EXPECT_DOUBLE_EQ(Metrics::mbps(1'250'000, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Metrics::mbps(100, 0.0), 0.0);
}

// ------------------------------------------------------------ config parse --

TEST(ScenarioConfig, ParsesFullDocument) {
  const char* yaml =
      "duration_s: 3.5\n"
      "stats_period_ttis: 2\n"
      "remote_scheduler: true\n"
      "schedule_ahead_sf: 6\n"
      "enbs:\n"
      "  - enb_id: 1\n"
      "    name: east\n"
      "    dl_scheduler: local_pf\n"
      "    control_delay_ms: 7.5\n"
      "  - enb_id: 2\n"
      "ues:\n"
      "  - enb: 1\n"
      "    cqi: 12\n"
      "    traffic: cbr\n"
      "    rate_mbps: 3.25\n"
      "  - enb: 2\n"
      "    traffic: none\n";
  auto spec = parse_scenario(yaml);
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  EXPECT_DOUBLE_EQ(spec->duration_s, 3.5);
  EXPECT_EQ(spec->stats_period_ttis, 2u);
  EXPECT_TRUE(spec->remote_scheduler);
  EXPECT_EQ(spec->schedule_ahead_sf, 6);
  ASSERT_EQ(spec->enbs.size(), 2u);
  EXPECT_EQ(spec->enbs[0].name, "east");
  EXPECT_EQ(spec->enbs[0].dl_scheduler, "local_pf");
  EXPECT_DOUBLE_EQ(spec->enbs[0].control_delay_ms, 7.5);
  EXPECT_EQ(spec->enbs[1].name, "enb-2");  // default name
  ASSERT_EQ(spec->ues.size(), 2u);
  EXPECT_EQ(spec->ues[0].cqi, 12);
  EXPECT_DOUBLE_EQ(spec->ues[0].rate_mbps, 3.25);
  EXPECT_EQ(spec->ues[1].traffic, "none");
}

TEST(ScenarioConfig, RejectsInvalidDocuments) {
  EXPECT_FALSE(parse_scenario("duration_s: 0\nenbs:\n  - enb_id: 1\n").ok());
  EXPECT_FALSE(parse_scenario("duration_s: 1\n").ok());  // no enbs
  EXPECT_FALSE(
      parse_scenario("enbs:\n  - enb_id: 1\nues:\n  - enb: 9\n").ok());  // unknown enb
  EXPECT_FALSE(
      parse_scenario("enbs:\n  - enb_id: 1\nues:\n  - enb: 1\n    cqi: 99\n").ok());
  EXPECT_FALSE(
      parse_scenario("enbs:\n  - enb_id: 1\nues:\n  - enb: 1\n    traffic: bogus\n").ok());
  EXPECT_FALSE(parse_scenario("enbs:\n  - enb_id: 1\nstats_period_ttis: 0\n").ok());
  EXPECT_FALSE(parse_scenario(": : :\n").ok());  // YAML garbage
}

// -------------------------------------------------------------- config run --

TEST(ScenarioConfig, RunsLocalSchedulingScenario) {
  auto spec = parse_scenario(
      "duration_s: 1.5\n"
      "enbs:\n"
      "  - enb_id: 1\n"
      "ues:\n"
      "  - enb: 1\n"
      "    cqi: 15\n"
      "    traffic: full_buffer\n"
      "  - enb: 1\n"
      "    cqi: 10\n"
      "    traffic: cbr\n"
      "    rate_mbps: 2\n");
  ASSERT_TRUE(spec.ok());
  const auto summary = run_scenario(*spec);
  ASSERT_EQ(summary.ues.size(), 2u);
  EXPECT_TRUE(summary.ues[0].connected);
  EXPECT_TRUE(summary.ues[1].connected);
  EXPECT_GT(summary.ues[0].dl_mbps, 15.0);           // full buffer at CQI 15
  EXPECT_NEAR(summary.ues[1].dl_mbps, 2.0, 0.4);     // CBR delivered
  EXPECT_EQ(summary.master_cycles, 1500);
  EXPECT_GT(summary.rib_updates, 1000u);
  EXPECT_GT(summary.uplink_signaling_mbps, 0.1);

  const auto text = format_summary(summary);
  EXPECT_NE(text.find("connected"), std::string::npos);
  EXPECT_NE(text.find("RIB updates"), std::string::npos);
}

TEST(ScenarioConfig, UplinkTrafficAndCqiTraces) {
  auto spec = parse_scenario(
      "duration_s: 2\n"
      "enbs:\n"
      "  - enb_id: 1\n"
      "ues:\n"
      "  - enb: 1\n"
      "    traffic: none\n"
      "    ul_traffic: full_buffer\n"
      "    ul_cqi: 8\n"
      "  - enb: 1\n"
      "    traffic: full_buffer\n"
      "    cqi_trace: [15, 4]\n"
      "    cqi_trace_period_ms: 500\n");
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  ASSERT_EQ(spec->ues.size(), 2u);
  EXPECT_EQ(spec->ues[0].ul_traffic, "full_buffer");
  ASSERT_EQ(spec->ues[1].cqi_trace.size(), 2u);

  const auto summary = run_scenario(*spec);
  ASSERT_EQ(summary.ues.size(), 2u);
  // UE 0 pushes uplink only.
  EXPECT_GT(summary.ues[0].ul_mbps, 5.0);
  EXPECT_LT(summary.ues[0].dl_mbps, 0.1);
  // UE 1's throughput reflects the looping 15/4 trace: between the pure
  // CQI-4 (~5) and pure CQI-15 (~23) rates.
  EXPECT_GT(summary.ues[1].dl_mbps, 8.0);
  EXPECT_LT(summary.ues[1].dl_mbps, 20.0);

  EXPECT_FALSE(
      parse_scenario("enbs:\n  - enb_id: 1\nues:\n  - enb: 1\n    ul_traffic: bogus\n").ok());
  EXPECT_FALSE(
      parse_scenario("enbs:\n  - enb_id: 1\nues:\n  - enb: 1\n    cqi_trace: [99]\n").ok());
}

TEST(ScenarioConfig, RunsRemoteSchedulingScenario) {
  auto spec = parse_scenario(
      "duration_s: 1.5\n"
      "remote_scheduler: true\n"
      "schedule_ahead_sf: 4\n"
      "enbs:\n"
      "  - enb_id: 1\n"
      "    control_delay_ms: 1\n"
      "ues:\n"
      "  - enb: 1\n"
      "    cqi: 15\n"
      "    traffic: full_buffer\n");
  ASSERT_TRUE(spec.ok());
  const auto summary = run_scenario(*spec);
  ASSERT_EQ(summary.ues.size(), 1u);
  EXPECT_TRUE(summary.ues[0].connected);
  EXPECT_GT(summary.ues[0].dl_mbps, 12.0);
  // Centralized scheduling pushes commands downstream.
  EXPECT_GT(summary.downlink_signaling_mbps, 0.1);
}

TEST(ScenarioConfig, ObservabilityCollectsMetricsDumps) {
  auto spec = parse_scenario(
      "duration_s: 2\n"
      "observability: true\n"
      "metrics_period_s: 0.5\n"
      "enbs:\n"
      "  - enb_id: 1\n"
      "ues:\n"
      "  - enb: 1\n"
      "    cqi: 12\n"
      "    traffic: full_buffer\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->observability);
  EXPECT_DOUBLE_EQ(spec->metrics_period_s, 0.5);
  const auto summary = run_scenario(*spec);
  EXPECT_TRUE(summary.observability);

  // 2 s at a 0.5 s period: dumps at 0, 0.5, 1.0, 1.5 plus the end-of-run
  // dump.
  ASSERT_EQ(summary.metrics_json.size(), 5u);
  const std::string& last = summary.metrics_json.back();
  EXPECT_EQ(last.front(), '{');
  EXPECT_EQ(last.back(), '}');
  EXPECT_NE(last.find("\"t_us\":"), std::string::npos);
  EXPECT_NE(last.find("\"cycles_run\":2000"), std::string::npos) << last;
  EXPECT_NE(last.find("signaling_rx_bytes{agent=1,category=stats}"), std::string::npos);
  EXPECT_NE(last.find("agent_signaling_tx_bytes{agent=1,category=stats}"),
            std::string::npos);
  EXPECT_NE(last.find("link_frames_tx{link=0,dir=up}"), std::string::npos);
  EXPECT_NE(last.find("control_latency_us{agent=1}"), std::string::npos);

  EXPECT_NE(summary.metrics_prometheus.find("cycles_run 2000"), std::string::npos);
  EXPECT_NE(summary.metrics_block.find("metrics:"), std::string::npos);
  EXPECT_NE(summary.metrics_block.find("cycle us (mean/max)"), std::string::npos);
  const auto text = format_summary(summary);
  EXPECT_NE(text.find("metrics:"), std::string::npos);
}

TEST(ScenarioConfig, ObservabilityOffLeavesSummaryEmpty) {
  auto spec = parse_scenario(
      "duration_s: 1\n"
      "enbs:\n"
      "  - enb_id: 1\n");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->observability);
  const auto summary = run_scenario(*spec);
  EXPECT_FALSE(summary.observability);
  EXPECT_TRUE(summary.metrics_json.empty());
  EXPECT_TRUE(summary.metrics_prometheus.empty());
  EXPECT_TRUE(summary.metrics_block.empty());
  EXPECT_EQ(format_summary(summary).find("metrics:"), std::string::npos);
}

}  // namespace
}  // namespace flexran::scenario
