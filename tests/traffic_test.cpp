#include <gtest/gtest.h>

#include "traffic/dash.h"
#include "traffic/tcp.h"
#include "traffic/udp.h"

namespace flexran::traffic {
namespace {

// ------------------------------------------------------------------- UDP --

TEST(UdpCbr, RateAccuracy) {
  sim::Simulator simulator;
  std::uint64_t received = 0;
  UdpCbrSource source(simulator, [&](std::uint32_t bytes) { received += bytes; },
                      /*rate_mbps=*/4.0, /*packet_bytes=*/1400);
  source.start();
  simulator.run_until(sim::from_seconds(10));
  const double mbps = static_cast<double>(received) * 8.0 / 10.0 / 1e6;
  EXPECT_NEAR(mbps, 4.0, 0.1);
}

TEST(UdpCbr, StopHaltsEmission) {
  sim::Simulator simulator;
  std::uint64_t received = 0;
  UdpCbrSource source(simulator, [&](std::uint32_t bytes) { received += bytes; }, 8.0);
  source.start();
  simulator.run_until(sim::from_seconds(1));
  source.stop();
  const auto at_stop = received;
  simulator.run_until(sim::from_seconds(2));
  EXPECT_EQ(received, at_stop);
}

TEST(UdpCbr, RateChangeTakesEffect) {
  sim::Simulator simulator;
  std::uint64_t received = 0;
  UdpCbrSource source(simulator, [&](std::uint32_t bytes) { received += bytes; }, 2.0);
  source.start();
  simulator.run_until(sim::from_seconds(5));
  const auto phase1 = received;
  source.stop();
  source.set_rate_mbps(8.0);
  source.start();
  simulator.run_until(sim::from_seconds(10));
  const auto phase2 = received - phase1;
  EXPECT_NEAR(static_cast<double>(phase2) / static_cast<double>(phase1), 4.0, 0.5);
}

// ------------------------------------------------------ TCP over a bearer --

/// Minimal bearer emulation: a byte queue drained at a fixed capacity, with
/// the drained bytes fed back to the flow as delivery (a 4-TTI air latency
/// mimics the HARQ pipeline).
class FakeBearer {
 public:
  FakeBearer(sim::Simulator& sim, double capacity_mbps)
      : sim_(sim), capacity_bytes_per_tti_(capacity_mbps * 1e6 / 8.0 / 1000.0) {}

  void attach(TcpFlow& flow) { flow_ = &flow; }
  void enqueue(std::uint32_t bytes) { queue_ += bytes; }
  std::uint32_t queue_bytes() const { return static_cast<std::uint32_t>(queue_); }
  void set_capacity_mbps(double mbps) { capacity_bytes_per_tti_ = mbps * 1e6 / 8.0 / 1000.0; }

  void run_ttis(int ttis, const std::function<void(std::int64_t)>& per_tti = nullptr) {
    for (int i = 0; i < ttis; ++i) {
      const std::int64_t tti = sim_.current_tti() + 1;
      sim_.run_until(tti * sim::kTtiUs);
      flow_->on_tti(tti);
      const double drained = std::min(queue_, capacity_bytes_per_tti_);
      queue_ -= drained;
      if (drained > 0) {
        sim_.after(4 * sim::kTtiUs, [this, drained] {
          flow_->on_delivered(static_cast<std::uint32_t>(drained));
        });
      }
      if (per_tti) per_tti(tti);
    }
  }

 private:
  sim::Simulator& sim_;
  double capacity_bytes_per_tti_;
  double queue_ = 0.0;
  TcpFlow* flow_ = nullptr;
};

TEST(TcpFlow, TransferCompletes) {
  sim::Simulator simulator;
  FakeBearer bearer(simulator, 10.0);
  TcpFlow flow(simulator, [&](std::uint32_t b) { bearer.enqueue(b); },
               [&] { return bearer.queue_bytes(); });
  bearer.attach(flow);

  bool done = false;
  flow.transfer(500'000, [&] { done = true; });
  bearer.run_ttis(3000);
  EXPECT_TRUE(done);
  EXPECT_TRUE(flow.idle());
  EXPECT_GE(flow.payload_delivered(), 500'000u);
}

TEST(TcpFlow, SequentialTransfersCompleteInOrder) {
  sim::Simulator simulator;
  FakeBearer bearer(simulator, 10.0);
  TcpFlow flow(simulator, [&](std::uint32_t b) { bearer.enqueue(b); },
               [&] { return bearer.queue_bytes(); });
  bearer.attach(flow);

  std::vector<int> order;
  flow.transfer(100'000, [&] { order.push_back(1); });
  flow.transfer(100'000, [&] { order.push_back(2); });
  bearer.run_ttis(2000);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TcpFlow, PersistentGoodputApproachesCapacity) {
  sim::Simulator simulator;
  FakeBearer bearer(simulator, 12.0);
  TcpFlow flow(simulator, [&](std::uint32_t b) { bearer.enqueue(b); },
               [&] { return bearer.queue_bytes(); });
  bearer.attach(flow);
  flow.start_persistent();
  bearer.run_ttis(10'000);  // 10 s
  const double goodput = flow.mean_goodput_mbps(10.0);
  EXPECT_GT(goodput, 12.0 * 0.75);  // sawtooth + headers keep it below capacity
  EXPECT_LT(goodput, 12.0);
  EXPECT_GT(flow.loss_events(), 0u);  // the deep-buffer probe found the limit
}

TEST(TcpFlow, SlowStartGrowsWindowExponentially) {
  sim::Simulator simulator;
  FakeBearer bearer(simulator, 50.0);
  TcpFlow flow(simulator, [&](std::uint32_t b) { bearer.enqueue(b); },
               [&] { return bearer.queue_bytes(); });
  bearer.attach(flow);
  const auto initial = flow.cwnd_bytes();
  flow.start_persistent();
  bearer.run_ttis(30);
  EXPECT_GT(flow.cwnd_bytes(), 2 * initial);
}

TEST(TcpFlow, LossHalvesWindow) {
  sim::Simulator simulator;
  TcpConfig config;
  config.queue_limit_bytes = 30'000;  // shallow buffer -> early loss
  FakeBearer bearer(simulator, 2.0);
  TcpFlow flow(simulator, [&](std::uint32_t b) { bearer.enqueue(b); },
               [&] { return bearer.queue_bytes(); }, config);
  bearer.attach(flow);
  flow.start_persistent();

  std::uint32_t max_cwnd_before_loss = 0;
  std::uint64_t losses_seen = 0;
  std::uint32_t cwnd_after_loss = 0;
  bearer.run_ttis(5000, [&](std::int64_t) {
    if (flow.loss_events() == 0) {
      max_cwnd_before_loss = std::max(max_cwnd_before_loss, flow.cwnd_bytes());
    } else if (losses_seen == 0) {
      losses_seen = flow.loss_events();
      cwnd_after_loss = flow.cwnd_bytes();
    }
  });
  ASSERT_GT(flow.loss_events(), 0u);
  EXPECT_LE(cwnd_after_loss, max_cwnd_before_loss / 2 + 1500);
}

TEST(TcpFlow, LowCapacityLimitsGoodput) {
  // Table 2 shape: goodput ordering follows capacity ordering.
  auto run = [](double capacity) {
    sim::Simulator simulator;
    FakeBearer bearer(simulator, capacity);
    TcpFlow flow(simulator, [&](std::uint32_t b) { bearer.enqueue(b); },
                 [&] { return bearer.queue_bytes(); });
    bearer.attach(flow);
    flow.start_persistent();
    bearer.run_ttis(5000);
    return flow.mean_goodput_mbps(5.0);
  };
  const double low = run(1.2);
  const double mid = run(3.0);
  const double high = run(13.0);
  EXPECT_LT(low, mid);
  EXPECT_LT(mid, high);
  EXPECT_NEAR(low, 1.05, 0.3);
}

// ------------------------------------------------------------------ DASH --

struct DashRig {
  sim::Simulator simulator;
  FakeBearer bearer;
  TcpFlow flow;
  DashClient client;

  DashRig(double capacity_mbps, DashVideo video, DashClientConfig config)
      : bearer(simulator, capacity_mbps),
        flow(simulator, [this](std::uint32_t b) { bearer.enqueue(b); },
             [this] { return bearer.queue_bytes(); }),
        client(simulator, flow, std::move(video), config) {
    bearer.attach(flow);
  }

  void run_seconds(double seconds) {
    bearer.run_ttis(static_cast<int>(seconds * 1000),
                    [&](std::int64_t tti) { client.on_tti(tti); });
  }
};

TEST(Dash, ReferencePlayerConservativeUnderTightCapacity) {
  // Fig. 11a: capacity 2.2 Mb/s, ladder {1.2, 2, 4}: the pure throughput
  // rule with the 0.8 safety factor keeps the player pinned at the lowest
  // representation even though 40% more throughput is available -- exactly
  // the underutilization the paper reports -- with no freezes.
  DashClientConfig config;
  config.max_buffer_s = 24.0;
  DashRig rig(2.2, paper_video_low(), config);
  rig.client.start();
  rig.run_seconds(120);
  EXPECT_EQ(rig.client.freeze_count(), 0);
  EXPECT_NEAR(rig.client.bitrate_series().mean_in(20, 120), 1.2, 0.1);
  EXPECT_GT(rig.client.segments_downloaded(), 30);
}

TEST(Dash, ReferencePlayerOvershootsWithConfidentBuffer) {
  // Fig. 11b mechanism: plenty of buffer -> the player probes one level up
  // each segment and lands above capacity (19.6 > 13), then suffers.
  DashClientConfig config;
  config.buffer_probing = true;
  config.step_up_buffer_s = 10.0;
  config.max_buffer_s = 60.0;
  DashRig rig(13.0, paper_video_4k(), config);
  rig.client.start();
  rig.run_seconds(180);
  // It reached the top rung at some point...
  double max_bitrate = 0;
  for (const auto& point : rig.client.bitrate_series().points()) {
    max_bitrate = std::max(max_bitrate, point.value);
  }
  EXPECT_GE(max_bitrate, 19.6);
}

TEST(Dash, AssistedPlayerRespectsCap) {
  DashClientConfig config;
  config.mode = AbrMode::assisted;
  DashRig rig(13.0, paper_video_4k(), config);
  rig.client.set_bitrate_cap_mbps(7.3);
  rig.client.start();
  rig.run_seconds(120);
  EXPECT_EQ(rig.client.freeze_count(), 0);
  for (const auto& point : rig.client.bitrate_series().points()) {
    EXPECT_LE(point.value, 7.3);
  }
  // And it uses the allowance, not the basement.
  EXPECT_NEAR(rig.client.bitrate_series().mean_in(20, 120), 7.3, 0.5);
}

TEST(Dash, AssistedWithoutGuidanceStaysLowest) {
  DashClientConfig config;
  config.mode = AbrMode::assisted;
  DashRig rig(13.0, paper_video_4k(), config);
  rig.client.start();
  rig.run_seconds(30);
  for (const auto& point : rig.client.bitrate_series().points()) {
    EXPECT_DOUBLE_EQ(point.value, 2.9);
  }
}

TEST(Dash, SustainedOverloadCausesFreezes) {
  // A client pinned above capacity must rebuffer.
  DashClientConfig config;
  config.mode = AbrMode::assisted;
  DashRig rig(5.0, paper_video_4k(), config);
  rig.client.set_bitrate_cap_mbps(9.6);  // bad guidance, ~2x capacity
  rig.client.start();
  rig.run_seconds(120);
  EXPECT_GT(rig.client.freeze_count(), 0);
  EXPECT_GT(rig.client.total_freeze_seconds(), 1.0);
}

TEST(Dash, BufferCapStopsDownloads) {
  DashClientConfig config;
  config.mode = AbrMode::assisted;
  config.max_buffer_s = 10.0;
  DashRig rig(20.0, paper_video_low(), config);
  rig.client.set_bitrate_cap_mbps(1.2);
  rig.client.start();
  rig.run_seconds(60);
  EXPECT_LE(rig.client.buffer_seconds(), 12.0);  // cap + one segment
}

}  // namespace
}  // namespace flexran::traffic
