#include <gtest/gtest.h>

#include "apps/eicic.h"
#include "apps/mec_dash.h"
#include "apps/monitoring.h"
#include "apps/ran_sharing.h"
#include "apps/remote_scheduler.h"
#include "scenario/dash_session.h"
#include "scenario/testbed.h"
#include "traffic/udp.h"

namespace flexran::apps {
namespace {

using scenario::Testbed;

stack::UeProfile cqi_ue(int cqi, std::int64_t attach_after = 1) {
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  profile.attach_after_ttis = attach_after;
  return profile;
}

scenario::EnbSpec spec(lte::EnbId id = 1) {
  scenario::EnbSpec s;
  s.enb.enb_id = id;
  s.enb.cells[0].cell_id = id;
  s.agent.name = "enb-" + std::to_string(id);
  return s;
}

/// Keeps a UE's downlink queue backlogged.
void saturate(Testbed& testbed, stack::EnodebDataPlane& dp, lte::Rnti rnti,
              std::uint32_t low_water = 60'000) {
  testbed.on_tti([&dp, rnti, low_water, &testbed](std::int64_t) {
    const auto* ue = dp.ue(rnti);
    if (ue != nullptr && ue->dl_queue.total_bytes() < low_water) {
      (void)testbed.epc().downlink(rnti, low_water);
    }
  });
}

// -------------------------------------------------------------- monitoring --

TEST(Monitoring, SummarizesRib) {
  Testbed testbed(scenario::per_tti_master_config());
  auto* app = static_cast<MonitoringApp*>(
      testbed.master().add_app(std::make_unique<MonitoringApp>(10)));
  auto& enb = testbed.add_enb(spec());
  testbed.add_ue(0, cqi_ue(10));
  testbed.add_ue(0, cqi_ue(14));
  testbed.run_ttis(100);

  EXPECT_GT(app->snapshots_taken(), 5);
  const auto& summaries = app->summaries();
  ASSERT_TRUE(summaries.contains(enb.agent_id));
  EXPECT_EQ(summaries.at(enb.agent_id).ue_count, 2u);
  EXPECT_NEAR(summaries.at(enb.agent_id).mean_cqi, 12.0, 1.0);
}

// -------------------------------------------------------- remote scheduler --

TEST(RemoteScheduler, CentralizedSchedulingServesUes) {
  Testbed testbed(scenario::per_tti_master_config());
  auto s = spec();
  s.agent.dl_scheduler = "remote";  // local scheduler inactive
  auto& enb = testbed.add_enb(s);
  auto* app = static_cast<RemoteSchedulerApp*>(
      testbed.master().add_app(std::make_unique<RemoteSchedulerApp>()));

  const auto rnti = testbed.add_ue(0, cqi_ue(15, /*attach_after=*/20));
  testbed.run_ttis(200);
  ASSERT_TRUE(enb.data_plane->ue(rnti)->connected())
      << "remote scheduler must carry the attach signaling";

  saturate(testbed, *enb.data_plane, rnti);
  testbed.run_ttis(2000);
  const double mbps = scenario::Metrics::mbps(
      testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink), 2.2);
  EXPECT_GT(mbps, 18.0);  // centralized scheduling sustains near-full rate
  EXPECT_GT(app->decisions_sent(), 1500u);
  EXPECT_GT(enb.agent->remote_decisions_applied(), 1500u);
}

TEST(RemoteScheduler, InsufficientScheduleAheadStallsAttach) {
  // Fig. 9 lower triangle: one-way delay 15 ms but decisions target only
  // +2 subframes -> every decision arrives past its deadline.
  Testbed testbed(scenario::per_tti_master_config());
  auto s = spec();
  s.agent.dl_scheduler = "remote";
  s.uplink.delay = sim::from_ms(15);
  s.downlink.delay = sim::from_ms(15);
  auto& enb = testbed.add_enb(s);
  RemoteSchedulerConfig config;
  config.schedule_ahead_sf = 2;
  testbed.master().add_app(std::make_unique<RemoteSchedulerApp>(config));

  const auto rnti = testbed.add_ue(0, cqi_ue(15, 20));
  testbed.run_ttis(3000);
  EXPECT_FALSE(enb.data_plane->ue(rnti)->connected());
  EXPECT_GT(enb.agent->missed_deadline_decisions(), 100u);
}

TEST(RemoteScheduler, SufficientScheduleAheadSurvivesLatency) {
  Testbed testbed(scenario::per_tti_master_config());
  auto s = spec();
  s.agent.dl_scheduler = "remote";
  s.uplink.delay = sim::from_ms(15);
  s.downlink.delay = sim::from_ms(15);
  auto& enb = testbed.add_enb(s);
  RemoteSchedulerConfig config;
  config.schedule_ahead_sf = 40;  // covers RTT 30 ms comfortably
  testbed.master().add_app(std::make_unique<RemoteSchedulerApp>(config));

  const auto rnti = testbed.add_ue(0, cqi_ue(15, 20));
  testbed.run_ttis(1000);
  ASSERT_TRUE(enb.data_plane->ue(rnti)->connected());

  saturate(testbed, *enb.data_plane, rnti);
  testbed.run_ttis(2000);
  const double mbps = scenario::Metrics::mbps(
      testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink), 3.0);
  EXPECT_GT(mbps, 12.0);
}

// --------------------------------------------------------------- MEC DASH --

TEST(MecDash, TableInterpolation) {
  const auto table = paper_table2_bitrates();
  EXPECT_DOUBLE_EQ(sustainable_bitrate_mbps(table, 2.0), 1.4);
  EXPECT_DOUBLE_EQ(sustainable_bitrate_mbps(table, 10.0), 7.3);
  EXPECT_DOUBLE_EQ(sustainable_bitrate_mbps(table, 1.0), 1.4);   // clamp low
  EXPECT_DOUBLE_EQ(sustainable_bitrate_mbps(table, 20.0), 11.0);  // clamp high
  const double mid = sustainable_bitrate_mbps(table, 7.0);        // between 4 and 10
  EXPECT_GT(mid, 2.9);
  EXPECT_LT(mid, 7.3);
}

TEST(MecDash, PushesBitrateOnCqiChange) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec());
  // Channel toggles CQI 10 -> 4 at t=3s (Fig. 11b pattern).
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::ScheduledCqiChannel>(
      std::vector<phy::ScheduledCqiChannel::Step>{{0, 10}, {sim::from_seconds(3), 4}});
  const auto rnti = testbed.add_ue(0, std::move(profile));

  std::vector<double> pushes;
  MecDashApp::Config config;
  config.agent = enb.agent_id;
  config.period_cycles = 50;
  testbed.master().add_app(std::make_unique<MecDashApp>(
      config, [&](lte::Rnti r, double mbps) {
        EXPECT_EQ(r, rnti);
        pushes.push_back(mbps);
      }));

  testbed.run_ttis(2000);
  ASSERT_FALSE(pushes.empty());
  EXPECT_NEAR(pushes.back(), sustainable_bitrate_mbps(config.table, 10.0), 0.8);
  testbed.run_ttis(4000);  // EWMA converges toward CQI 4
  ASSERT_GT(pushes.size(), 1u);
  EXPECT_NEAR(pushes.back(), sustainable_bitrate_mbps(config.table, 4.0), 0.8);
}

TEST(MecDash, LoadAwareGuidancePreventsMultiClientOverload) {
  // Two DASH clients share one CQI-10 cell (~11 Mb/s). Table 2's 7.3 Mb/s
  // is a sole-UE number: advising it to both overloads the cell; the
  // load-aware app halves the advice and both streams stay freeze-free.
  auto run = [](bool load_aware) {
    scenario::Testbed testbed(scenario::per_tti_master_config());
    auto& enb = testbed.add_enb(spec());
    const auto a = testbed.add_ue(0, cqi_ue(10));
    const auto b = testbed.add_ue(0, cqi_ue(10));
    testbed.run_ttis(50);

    traffic::DashClientConfig dash_config;
    dash_config.mode = traffic::AbrMode::assisted;
    scenario::DashSession session_a(testbed, 0, a, traffic::paper_video_4k(), dash_config);
    scenario::DashSession session_b(testbed, 0, b, traffic::paper_video_4k(), dash_config);

    MecDashApp::Config mec;
    mec.agent = enb.agent_id;
    mec.load_aware = load_aware;
    auto* ca = &session_a.client();
    auto* cb = &session_b.client();
    testbed.master().add_app(std::make_unique<MecDashApp>(
        mec, [ca, cb, a](lte::Rnti rnti, double mbps) {
          (rnti == a ? ca : cb)->set_bitrate_cap_mbps(mbps);
        }));
    session_a.start();
    session_b.start();
    testbed.run_seconds(60.0);
    return session_a.client().freeze_count() + session_b.client().freeze_count();
  };

  EXPECT_EQ(run(true), 0);
  EXPECT_GT(run(false), 0);  // sole-UE advice overloads the shared cell
}

// ------------------------------------------------------------ RAN sharing --

TEST(RanSharing, PolicyYamlRoundTrips) {
  std::vector<SliceSpec> slices(2);
  slices[0].share = 0.7;
  slices[0].policy = "fair";
  slices[0].rntis = {70, 71, 72};
  slices[1].share = 0.3;
  slices[1].policy = "group";
  slices[1].rntis = {80, 81, 82};
  slices[1].premium_rntis = {80, 81};
  slices[1].premium_share = 0.7;

  const auto yaml = make_slice_policy_yaml(slices);
  auto doc = util::parse_yaml(yaml);
  ASSERT_TRUE(doc.ok()) << doc.error().message;

  SlicedDlVsf vsf;
  const auto* params =
      doc.value().find("mac")->find("dl_ue_scheduler")->find("parameters")->find("slices");
  ASSERT_NE(params, nullptr);
  ASSERT_TRUE(vsf.set_parameter("slices", *params).ok());
  ASSERT_EQ(vsf.slices().size(), 2u);
  EXPECT_DOUBLE_EQ(vsf.slices()[0].share, 0.7);
  EXPECT_EQ(vsf.slices()[1].policy, "group");
  ASSERT_EQ(vsf.slices()[1].premium_rntis.size(), 2u);
  EXPECT_EQ(vsf.slices()[1].rntis.size(), 3u);
}

TEST(RanSharing, RejectsBadParameters) {
  SlicedDlVsf vsf;
  EXPECT_FALSE(vsf.set_parameter("bogus", util::YamlNode::scalar("1")).ok());
  EXPECT_FALSE(vsf.set_parameter("slices", util::YamlNode::scalar("1")).ok());
  auto bad_share = util::parse_yaml("items:\n  - share: 1.5\n").value();
  EXPECT_FALSE(vsf.set_parameter("slices", *bad_share.find("items")).ok());
}

TEST(RanSharing, SharesPartitionThroughput) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec());
  std::vector<lte::Rnti> mno_ues;
  std::vector<lte::Rnti> mvno_ues;
  for (int i = 0; i < 3; ++i) mno_ues.push_back(testbed.add_ue(0, cqi_ue(15)));
  for (int i = 0; i < 3; ++i) mvno_ues.push_back(testbed.add_ue(0, cqi_ue(15)));
  testbed.run_ttis(60);
  for (auto rnti : mno_ues) ASSERT_TRUE(enb.data_plane->ue(rnti)->connected());

  // Install the sliced scheduler with a 70/30 split.
  register_usecase_vsfs();
  std::vector<SliceSpec> slices(2);
  slices[0].share = 0.7;
  slices[0].rntis = mno_ues;
  slices[1].share = 0.3;
  slices[1].rntis = mvno_ues;
  ASSERT_TRUE(testbed.master()
                  .push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "sliced")
                  .ok());
  ASSERT_TRUE(testbed.master().send_policy(enb.agent_id, make_slice_policy_yaml(slices)).ok());
  testbed.run_ttis(10);

  for (auto rnti : mno_ues) saturate(testbed, *enb.data_plane, rnti, 30'000);
  for (auto rnti : mvno_ues) saturate(testbed, *enb.data_plane, rnti, 30'000);
  testbed.run_ttis(2000);

  std::uint64_t mno_bytes = 0;
  std::uint64_t mvno_bytes = 0;
  for (auto rnti : mno_ues) {
    mno_bytes += testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  }
  for (auto rnti : mvno_ues) {
    mvno_bytes += testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  }
  const double ratio = static_cast<double>(mno_bytes) / static_cast<double>(mno_bytes + mvno_bytes);
  EXPECT_NEAR(ratio, 0.7, 0.05);
}

TEST(RanSharing, GroupPolicyFavorsPremiumUsers) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec());
  std::vector<lte::Rnti> ues;
  for (int i = 0; i < 5; ++i) ues.push_back(testbed.add_ue(0, cqi_ue(10)));
  testbed.run_ttis(80);

  register_usecase_vsfs();
  std::vector<SliceSpec> slices(1);
  slices[0].share = 1.0;
  slices[0].policy = "group";
  slices[0].rntis = ues;
  slices[0].premium_rntis = {ues[0], ues[1]};
  slices[0].premium_share = 0.7;
  ASSERT_TRUE(testbed.master()
                  .push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "sliced")
                  .ok());
  ASSERT_TRUE(testbed.master().send_policy(enb.agent_id, make_slice_policy_yaml(slices)).ok());
  for (auto rnti : ues) saturate(testbed, *enb.data_plane, rnti, 30'000);
  testbed.run_ttis(2000);

  const auto premium = testbed.metrics().total_bytes(1, ues[0], lte::Direction::downlink);
  const auto secondary = testbed.metrics().total_bytes(1, ues[4], lte::Direction::downlink);
  // 2 premium UEs share 70%, 3 secondary share 30%: per-UE ratio = 3.5x.
  EXPECT_GT(static_cast<double>(premium) / static_cast<double>(secondary), 2.0);
}

TEST(RanSharing, AppAppliesScheduledSteps) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec());
  const auto a = testbed.add_ue(0, cqi_ue(15));
  const auto b = testbed.add_ue(0, cqi_ue(15));
  testbed.run_ttis(60);

  register_usecase_vsfs();
  std::vector<RanSharingApp::Step> steps(2);
  steps[0].at_seconds = 0.0;
  steps[0].slices = {{0.7, "fair", {a}, {}, 0.7}, {0.3, "fair", {b}, {}, 0.7}};
  steps[1].at_seconds = 2.0;
  steps[1].slices = {{0.3, "fair", {a}, {}, 0.7}, {0.7, "fair", {b}, {}, 0.7}};
  auto* app = static_cast<RanSharingApp*>(
      testbed.master().add_app(std::make_unique<RanSharingApp>(enb.agent_id, steps)));

  saturate(testbed, *enb.data_plane, a, 30'000);
  saturate(testbed, *enb.data_plane, b, 30'000);
  testbed.run_ttis(1800);  // through t=1.9s
  const auto a_phase1 = testbed.metrics().total_bytes(1, a, lte::Direction::downlink);
  const auto b_phase1 = testbed.metrics().total_bytes(1, b, lte::Direction::downlink);
  EXPECT_GT(a_phase1, b_phase1 * 3 / 2);

  testbed.run_ttis(2000);  // phase 2
  EXPECT_EQ(app->steps_applied(), 2u);
  const auto a_phase2 = testbed.metrics().total_bytes(1, a, lte::Direction::downlink) - a_phase1;
  const auto b_phase2 = testbed.metrics().total_bytes(1, b, lte::Direction::downlink) - b_phase1;
  EXPECT_GT(b_phase2, a_phase2 * 3 / 2);
}

// ----------------------------------------------------------------- eICIC ---

TEST(Eicic, SmallCellVsfSchedulesOnlyInAbs) {
  register_usecase_vsfs();
  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 2;
  config.cells[0].cell_id = 2;
  stack::EnodebDataPlane dp(simulator, config);
  agent::AgentApi api(dp);
  dp.configure_abs(lte::AbsPattern::per_frame(4), /*mute=*/false);

  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(10);
  const auto rnti = dp.add_ue(std::move(profile));
  dp.subframe_begin(1);
  dp.enqueue_dl(rnti, lte::kSrb1, 100);

  EicicSmallCellDlVsf vsf;
  auto in_abs = vsf.schedule_dl(api, 40);  // subframe 40 % 40 == 0 -> ABS
  EXPECT_FALSE(in_abs.dl.empty());
  auto outside = vsf.schedule_dl(api, 45);
  EXPECT_TRUE(outside.dl.empty());
}

TEST(Eicic, MacroVsfSkipsAbsWithoutMute) {
  register_usecase_vsfs();
  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 1;
  config.cells[0].cell_id = 1;
  stack::EnodebDataPlane dp(simulator, config);
  agent::AgentApi api(dp);
  dp.configure_abs(lte::AbsPattern::per_frame(4), /*mute=*/false);

  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(10);
  const auto rnti = dp.add_ue(std::move(profile));
  dp.subframe_begin(1);
  dp.enqueue_dl(rnti, lte::kSrb1, 100);

  EicicMacroDlVsf vsf;
  EXPECT_TRUE(vsf.schedule_dl(api, 40).dl.empty());   // ABS -> leave to master
  EXPECT_FALSE(vsf.schedule_dl(api, 45).dl.empty());  // normal subframe
}

}  // namespace
}  // namespace flexran::apps
