#include <gtest/gtest.h>

#include <algorithm>

#include "net/framing.h"
#include "proto/accounting.h"
#include "proto/messages.h"
#include "proto/wire.h"

namespace flexran::proto {
namespace {

// ------------------------------------------------------------------- wire --

TEST(Wire, VarintRoundTrip) {
  WireEncoder enc;
  enc.varint(0);
  enc.varint(127);
  enc.varint(128);
  enc.varint(300);
  enc.varint(0xffffffffffffffffull);
  WireDecoder dec(enc.bytes());
  EXPECT_EQ(dec.read_varint().value(), 0u);
  EXPECT_EQ(dec.read_varint().value(), 127u);
  EXPECT_EQ(dec.read_varint().value(), 128u);
  EXPECT_EQ(dec.read_varint().value(), 300u);
  EXPECT_EQ(dec.read_varint().value(), 0xffffffffffffffffull);
  EXPECT_TRUE(dec.done());
}

TEST(Wire, VarintCompactness) {
  // Protobuf wire-size property the Fig. 7 results rely on: small values
  // cost one byte.
  WireEncoder enc;
  enc.varint(1);
  EXPECT_EQ(enc.size(), 1u);
  WireEncoder enc2;
  enc2.varint(127);
  EXPECT_EQ(enc2.size(), 1u);
  WireEncoder enc3;
  enc3.varint(128);
  EXPECT_EQ(enc3.size(), 2u);
}

TEST(Wire, ZigzagSmallMagnitudes) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  for (std::int64_t v : {-1000000ll, -5ll, 0ll, 7ll, 123456789ll}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
}

TEST(Wire, FieldsWithMixedTypesRoundTrip) {
  WireEncoder enc;
  enc.field_varint(1, 42);
  enc.field_double(2, 3.5);
  enc.field_string(3, "hello");
  enc.field_fixed32(4, 0xdeadbeef);

  WireDecoder dec(enc.bytes());
  auto h1 = dec.next_field().value();
  EXPECT_EQ(h1.field, 1);
  EXPECT_EQ(h1.type, WireType::varint);
  EXPECT_EQ(dec.read_varint().value(), 42u);

  auto h2 = dec.next_field().value();
  EXPECT_EQ(h2.type, WireType::fixed64);
  EXPECT_DOUBLE_EQ(dec.read_double().value(), 3.5);

  auto h3 = dec.next_field().value();
  EXPECT_EQ(h3.type, WireType::length_delimited);
  EXPECT_EQ(dec.read_string().value(), "hello");

  auto h4 = dec.next_field().value();
  EXPECT_EQ(h4.type, WireType::fixed32);
  EXPECT_EQ(dec.read_fixed32().value(), 0xdeadbeefu);
  EXPECT_TRUE(dec.done());
}

TEST(Wire, SkipUnknownFields) {
  WireEncoder enc;
  enc.field_varint(9, 1);
  enc.field_string(10, "unknown");
  enc.field_double(11, 2.0);
  enc.field_varint(1, 7);

  WireDecoder dec(enc.bytes());
  std::uint64_t found = 0;
  while (!dec.done()) {
    auto header = dec.next_field().value();
    if (header.field == 1) {
      found = dec.read_varint().value();
    } else {
      ASSERT_TRUE(dec.skip(header.type).ok());
    }
  }
  EXPECT_EQ(found, 7u);
}

TEST(Wire, TruncatedInputFails) {
  WireEncoder enc;
  enc.field_string(1, "payload");
  auto bytes = enc.take();
  bytes.resize(bytes.size() - 3);  // cut into the string
  WireDecoder dec(bytes);
  auto header = dec.next_field();
  ASSERT_TRUE(header.ok());
  EXPECT_FALSE(dec.read_string().ok());
}

TEST(Wire, MalformedVarintFails) {
  std::vector<std::uint8_t> bad(11, 0x80);  // never terminates
  WireDecoder dec(bad);
  EXPECT_FALSE(dec.read_varint().ok());
}

// --------------------------------------------------------------- envelope --

TEST(Envelope, RoundTrip) {
  Hello hello;
  hello.enb_id = 17;
  hello.name = "enb-17";
  hello.n_cells = 1;
  hello.capabilities = {"mac", "rrc"};

  const auto wire = pack(hello, /*xid=*/99);
  auto envelope = Envelope::decode(wire);
  ASSERT_TRUE(envelope.ok()) << envelope.error().message;
  EXPECT_EQ(envelope->version, kProtocolVersion);
  EXPECT_EQ(envelope->type, MessageType::hello);
  EXPECT_EQ(envelope->xid, 99u);

  auto decoded = unpack<Hello>(*envelope);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->enb_id, 17u);
  EXPECT_EQ(decoded->name, "enb-17");
  ASSERT_EQ(decoded->capabilities.size(), 2u);
  EXPECT_EQ(decoded->capabilities[1], "rrc");
}

TEST(Envelope, QueueStatusAndThrottleHintRoundTrip) {
  EchoRequest req{.subframe = 7, .timestamp_us = 42};
  WireEncoder body;
  req.encode_body(body);
  Envelope envelope;
  envelope.type = MessageType::echo_request;
  envelope.body = body.take();
  envelope.queue_status = 2;
  envelope.throttle_hint = 8;
  auto decoded = Envelope::decode(envelope.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded->queue_status, 2u);
  EXPECT_EQ(decoded->throttle_hint, 8u);

  // Defaults stay off the wire: a normal-state envelope is byte-identical
  // to the pre-overload encoding.
  const auto plain = pack(req);
  auto plain_decoded = Envelope::decode(plain);
  ASSERT_TRUE(plain_decoded.ok());
  EXPECT_EQ(plain_decoded->queue_status, 0u);
  EXPECT_EQ(plain_decoded->throttle_hint, 0u);
  Envelope unset;
  unset.type = MessageType::echo_request;
  WireEncoder body2;
  req.encode_body(body2);
  unset.body = body2.take();
  EXPECT_EQ(unset.encode(), plain);
}

TEST(Envelope, TypeMismatchRejected) {
  const auto wire = pack(EchoRequest{.subframe = 1, .timestamp_us = 2});
  auto envelope = Envelope::decode(wire);
  ASSERT_TRUE(envelope.ok());
  EXPECT_FALSE(unpack<Hello>(*envelope).ok());
}

TEST(Envelope, GarbageRejected) {
  std::vector<std::uint8_t> garbage = {0xff, 0xfe, 0x01, 0x99};
  EXPECT_FALSE(Envelope::decode(garbage).ok());
}

// --------------------------------------------------------------- messages --

TEST(Messages, EchoCarriesSyncInfo) {
  EchoRequest req{.subframe = 12345, .timestamp_us = 777};
  auto envelope = Envelope::decode(pack(req)).value();
  auto decoded = unpack<EchoRequest>(envelope).value();
  EXPECT_EQ(decoded.subframe, 12345);
  EXPECT_EQ(decoded.timestamp_us, 777);

  EchoReply rep{.subframe = 12346, .echoed_timestamp_us = 777};
  auto rep2 = unpack<EchoReply>(Envelope::decode(pack(rep)).value()).value();
  EXPECT_EQ(rep2.subframe, 12346);
}

TEST(Messages, EnbConfigReplyRoundTrip) {
  lte::CellConfig cell;
  cell.cell_id = 3;
  cell.bandwidth_mhz = 10.0;
  cell.tx_mode = lte::TransmissionMode::tm1_single_antenna;
  cell.band = 5;
  cell.pci = 101;

  EnbConfigReply reply;
  reply.enb_id = 7;
  reply.cells.push_back(CellConfigMsg::from(cell));

  auto decoded = unpack<EnbConfigReply>(Envelope::decode(pack(reply)).value()).value();
  ASSERT_EQ(decoded.cells.size(), 1u);
  const auto restored = decoded.cells[0].to_cell_config();
  EXPECT_EQ(restored.cell_id, 3u);
  EXPECT_DOUBLE_EQ(restored.bandwidth_mhz, 10.0);
  EXPECT_EQ(restored.pci, 101);
  EXPECT_EQ(restored.dl_prbs(), 50);
}

TEST(Messages, UeAndLcConfigRoundTrip) {
  UeConfigReply ues;
  ues.ues.push_back(UeConfigMsg{.rnti = 0x4601, .primary_cell = 1, .tx_mode = 1,
                                .ue_category = 4, .carrier_aggregation = false});
  auto ue2 = unpack<UeConfigReply>(Envelope::decode(pack(ues)).value()).value();
  ASSERT_EQ(ue2.ues.size(), 1u);
  EXPECT_EQ(ue2.ues[0].rnti, 0x4601);
  EXPECT_EQ(ue2.ues[0].to_ue_config().ue_category, 4);

  LcConfigReply lcs;
  lcs.channels.push_back({.rnti = 0x4601, .lcid = 3, .lc_group = 2});
  lcs.channels.push_back({.rnti = 0x4602, .lcid = 1, .lc_group = 0});
  auto lc2 = unpack<LcConfigReply>(Envelope::decode(pack(lcs)).value()).value();
  ASSERT_EQ(lc2.channels.size(), 2u);
  EXPECT_EQ(lc2.channels[1].rnti, 0x4602);
  EXPECT_EQ(lc2.channels[0].lc_group, 2);
}

TEST(Messages, StatsRequestRoundTrip) {
  StatsRequest req;
  req.request_id = 5;
  req.mode = ReportMode::periodic;
  req.periodicity_ttis = 2;
  req.flags = stats_flags::kBsr | stats_flags::kCqi;
  req.ues = {10, 11, 12};

  auto decoded = unpack<StatsRequest>(Envelope::decode(pack(req)).value()).value();
  EXPECT_EQ(decoded.mode, ReportMode::periodic);
  EXPECT_EQ(decoded.periodicity_ttis, 2u);
  EXPECT_EQ(decoded.flags, (stats_flags::kBsr | stats_flags::kCqi));
  ASSERT_EQ(decoded.ues.size(), 3u);
  EXPECT_EQ(decoded.ues[2], 12);
}

TEST(Messages, StatsReplyRoundTrip) {
  StatsReply reply;
  reply.request_id = 5;
  reply.subframe = 1000;
  UeStatsReport ue;
  ue.rnti = 70;
  ue.bsr_bytes = {100, 0, 2000, 0};
  ue.phr_db = -3;
  ue.wb_cqi = 12;
  ue.rlc_queue_bytes = 2100;
  ue.pending_harq = 2;
  ue.dl_bytes_delivered = 1234567;
  reply.ue_reports.push_back(ue);
  CellStatsReport cell;
  cell.cell_id = 1;
  cell.noise_interference_dbm = -95.5;
  cell.dl_prbs_in_use = 48;
  cell.active_ues = 16;
  reply.cell_reports.push_back(cell);

  auto decoded = unpack<StatsReply>(Envelope::decode(pack(reply)).value()).value();
  ASSERT_EQ(decoded.ue_reports.size(), 1u);
  const auto& u = decoded.ue_reports[0];
  EXPECT_EQ(u.rnti, 70);
  EXPECT_EQ(u.bsr_bytes[2], 2000u);
  EXPECT_EQ(u.total_bsr(), 2100u);
  EXPECT_EQ(u.phr_db, -3);
  EXPECT_EQ(u.wb_cqi, 12);
  EXPECT_EQ(u.dl_bytes_delivered, 1234567u);
  ASSERT_EQ(decoded.cell_reports.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded.cell_reports[0].noise_interference_dbm, -95.5);
  EXPECT_EQ(decoded.cell_reports[0].dl_prbs_in_use, 48u);
}

TEST(Messages, DlMacConfigRoundTrip) {
  lte::SchedulingDecision decision;
  decision.cell_id = 2;
  decision.subframe = 4321;
  lte::DlDci dci;
  dci.rnti = 0x4601;
  dci.rbs.set_range(0, 25);
  dci.mcs = 20;
  dci.harq_pid = 5;
  dci.new_data = false;
  decision.dl.push_back(dci);
  lte::DlDci dci2;
  dci2.rnti = 0x4602;
  dci2.rbs.set_range(25, 25);
  dci2.mcs = 10;
  decision.dl.push_back(dci2);

  const auto msg = to_dl_mac_config(decision);
  auto decoded = unpack<DlMacConfig>(Envelope::decode(pack(msg)).value()).value();
  EXPECT_EQ(decoded.cell_id, 2u);
  EXPECT_EQ(decoded.target_subframe, 4321);
  ASSERT_EQ(decoded.dcis.size(), 2u);
  EXPECT_EQ(decoded.dcis[0].rnti, 0x4601);
  EXPECT_EQ(decoded.dcis[0].rbs.count(), 25);
  EXPECT_EQ(decoded.dcis[0].harq_pid, 5);
  EXPECT_FALSE(decoded.dcis[0].new_data);
  EXPECT_TRUE(decoded.dcis[1].rbs.test(30));
  EXPECT_FALSE(decoded.dcis[1].rbs.overlaps(decoded.dcis[0].rbs));
}

TEST(Messages, UlMacConfigRoundTrip) {
  UlMacConfig msg;
  msg.cell_id = 1;
  msg.target_subframe = 99;
  lte::UlDci dci;
  dci.rnti = 40;
  dci.rbs.set_range(10, 6);
  dci.mcs = 12;
  msg.dcis.push_back(dci);
  auto decoded = unpack<UlMacConfig>(Envelope::decode(pack(msg)).value()).value();
  ASSERT_EQ(decoded.dcis.size(), 1u);
  EXPECT_EQ(decoded.dcis[0].rbs.count(), 6);
  EXPECT_EQ(decoded.dcis[0].mcs, 12);
}

TEST(Messages, HandoverAndAbsRoundTrip) {
  HandoverCommand ho{.rnti = 55, .source_cell = 1, .target_cell = 2};
  auto ho2 = unpack<HandoverCommand>(Envelope::decode(pack(ho)).value()).value();
  EXPECT_EQ(ho2.target_cell, 2u);

  AbsConfig abs;
  abs.cell_id = 1;
  abs.pattern = lte::AbsPattern::per_frame(4);
  abs.mute_during_abs = true;
  auto abs2 = unpack<AbsConfig>(Envelope::decode(pack(abs)).value()).value();
  EXPECT_EQ(abs2.pattern, abs.pattern);
  EXPECT_TRUE(abs2.pattern.is_abs(2));
  EXPECT_TRUE(abs2.mute_during_abs);
}

TEST(Messages, EventNotificationRoundTrip) {
  EventNotification ev;
  ev.event = EventType::ue_attach;
  ev.subframe = 500;
  ev.rnti = 33;
  ev.cell_id = 2;
  auto ev2 = unpack<EventNotification>(Envelope::decode(pack(ev)).value()).value();
  EXPECT_EQ(ev2.event, EventType::ue_attach);
  EXPECT_EQ(ev2.rnti, 33);
  EXPECT_EQ(ev2.cell_id, 2u);
}

TEST(Messages, DelegationRoundTrip) {
  ControlDelegation del;
  del.module = "mac";
  del.vsf = "dl_ue_scheduler";
  del.implementation = "local_pf";
  del.version = 3;
  del.blob = {1, 2, 3, 4};
  auto del2 = unpack<ControlDelegation>(Envelope::decode(pack(del)).value()).value();
  EXPECT_EQ(del2.module, "mac");
  EXPECT_EQ(del2.vsf, "dl_ue_scheduler");
  EXPECT_EQ(del2.implementation, "local_pf");
  EXPECT_EQ(del2.version, 3u);
  EXPECT_EQ(del2.blob, (std::vector<std::uint8_t>{1, 2, 3, 4}));

  PolicyReconfiguration pol;
  pol.yaml = "mac:\n  dl_ue_scheduler:\n    behavior: local_rr\n";
  auto pol2 = unpack<PolicyReconfiguration>(Envelope::decode(pack(pol)).value()).value();
  EXPECT_EQ(pol2.yaml, pol.yaml);
}

// ------------------------------------------------------------- categories --

TEST(Categories, SubframeTickIsSync) {
  EventNotification tick;
  tick.event = EventType::subframe_tick;
  tick.subframe = 1;
  auto envelope = Envelope::decode(pack(tick)).value();
  EXPECT_EQ(categorize(envelope.type, envelope.body), MessageCategory::sync);

  EventNotification attach;
  attach.event = EventType::ue_attach;
  attach.rnti = 1;
  auto envelope2 = Envelope::decode(pack(attach)).value();
  EXPECT_EQ(categorize(envelope2.type, envelope2.body), MessageCategory::agent_management);
}

TEST(Categories, ByMessageType) {
  EXPECT_EQ(categorize(MessageType::stats_reply, {}), MessageCategory::stats);
  EXPECT_EQ(categorize(MessageType::dl_mac_config, {}), MessageCategory::commands);
  EXPECT_EQ(categorize(MessageType::control_delegation, {}), MessageCategory::delegation);
  EXPECT_EQ(categorize(MessageType::hello, {}), MessageCategory::agent_management);
  EXPECT_EQ(categorize(MessageType::echo_reply, {}), MessageCategory::agent_management);
}

TEST(TrafficClasses, ByMessageType) {
  using net::TrafficClass;
  EXPECT_EQ(traffic_class(MessageType::hello, {}), TrafficClass::session);
  EXPECT_EQ(traffic_class(MessageType::echo_reply, {}), TrafficClass::session);
  EXPECT_EQ(traffic_class(MessageType::dl_mac_config, {}), TrafficClass::command);
  EXPECT_EQ(traffic_class(MessageType::policy_reconfiguration, {}), TrafficClass::command);
  EXPECT_EQ(traffic_class(MessageType::stats_request, {}), TrafficClass::config);
  EXPECT_EQ(traffic_class(MessageType::enb_config_reply, {}), TrafficClass::config);
  EXPECT_EQ(traffic_class(MessageType::stats_reply, {}), TrafficClass::stats);

  EventNotification tick;
  tick.event = EventType::subframe_tick;
  auto tick_env = Envelope::decode(pack(tick)).value();
  EXPECT_EQ(traffic_class(tick_env.type, tick_env.body), TrafficClass::sync);

  EventNotification attach;
  attach.event = EventType::ue_attach;
  attach.rnti = 9;
  auto attach_env = Envelope::decode(pack(attach)).value();
  EXPECT_EQ(traffic_class(attach_env.type, attach_env.body), TrafficClass::event);

  // Only event triggers, sync ticks and stats are sheddable.
  EXPECT_FALSE(net::sheddable(TrafficClass::session));
  EXPECT_FALSE(net::sheddable(TrafficClass::command));
  EXPECT_FALSE(net::sheddable(TrafficClass::config));
  EXPECT_TRUE(net::sheddable(TrafficClass::event));
  EXPECT_TRUE(net::sheddable(TrafficClass::sync));
  EXPECT_TRUE(net::sheddable(TrafficClass::stats));
}

// ----------------------------------------------------- aggregation savings --

TEST(WireSize, AggregatedStatsReportBeatsPerUeMessages) {
  // Fig. 7a sublinearity: one StatsReply carrying N UE reports is much
  // smaller than N separate single-UE replies (envelope and header
  // amortization).
  auto make_report = [](lte::Rnti rnti) {
    UeStatsReport ue;
    ue.rnti = rnti;
    ue.bsr_bytes = {1000, 0, 0, 0};
    ue.wb_cqi = 10;
    ue.rlc_queue_bytes = 1000;
    return ue;
  };

  StatsReply aggregated;
  aggregated.subframe = 1000;
  std::size_t separate_bytes = 0;
  for (lte::Rnti rnti = 1; rnti <= 50; ++rnti) {
    aggregated.ue_reports.push_back(make_report(rnti));
    StatsReply single;
    single.subframe = 1000;
    single.ue_reports.push_back(make_report(rnti));
    separate_bytes += pack(single).size();
  }
  const std::size_t aggregated_bytes = pack(aggregated).size();
  EXPECT_LT(aggregated_bytes, separate_bytes);
  // Per-UE marginal cost must be well under the standalone message cost.
  const double marginal = static_cast<double>(aggregated_bytes) / 50.0;
  const double standalone = static_cast<double>(separate_bytes) / 50.0;
  EXPECT_LT(marginal, 0.8 * standalone);
}

TEST(WireSize, EmptyDciListIsTiny) {
  DlMacConfig msg;
  msg.cell_id = 1;
  msg.target_subframe = 1;
  EXPECT_LT(pack(msg).size(), 16u);
}

// ----------------------------------------------------- timestamp echo --

TEST(Envelope, TimestampEchoRoundTrip) {
  EchoRequest req{.subframe = 3, .timestamp_us = 5};
  WireEncoder body;
  req.encode_body(body);
  Envelope envelope;
  envelope.type = MessageType::echo_request;
  envelope.body = body.take();
  envelope.ts_us = 123456789;
  envelope.ts_echo_us = 42;
  auto decoded = Envelope::decode(envelope.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded->ts_us, 123456789u);
  EXPECT_EQ(decoded->ts_echo_us, 42u);
}

TEST(Envelope, TimestampFieldsOmittedWhenZero) {
  // Observability off must be wire-identical to the seed encoding: the
  // zero-valued timestamp fields stay off the wire entirely.
  EchoRequest req{.subframe = 3, .timestamp_us = 5};
  const auto plain = pack(req);
  Envelope envelope;
  envelope.type = MessageType::echo_request;
  WireEncoder body;
  req.encode_body(body);
  envelope.body = body.take();
  envelope.ts_us = 0;
  envelope.ts_echo_us = 0;
  EXPECT_EQ(envelope.encode(), plain);
  auto decoded = Envelope::decode(plain);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->ts_us, 0u);
  EXPECT_EQ(decoded->ts_echo_us, 0u);
}

// ------------------------------------------------------- accounting --

TEST(Accounting, BucketsPerCategory) {
  SignalingAccountant accountant;
  accountant.record(MessageCategory::stats, 100);
  accountant.record(MessageCategory::stats, 50);
  accountant.record(MessageCategory::sync, 7);
  accountant.record(MessageCategory::commands, 20);
  accountant.record(MessageCategory::delegation, 300);
  accountant.record(MessageCategory::agent_management, 1);

  EXPECT_EQ(accountant.bytes(MessageCategory::stats), 150u);
  EXPECT_EQ(accountant.messages(MessageCategory::stats), 2u);
  EXPECT_EQ(accountant.bytes(MessageCategory::sync), 7u);
  EXPECT_EQ(accountant.messages(MessageCategory::sync), 1u);
  EXPECT_EQ(accountant.bytes(MessageCategory::commands), 20u);
  EXPECT_EQ(accountant.bytes(MessageCategory::delegation), 300u);
  EXPECT_EQ(accountant.bytes(MessageCategory::agent_management), 1u);
  EXPECT_EQ(accountant.total_bytes(), 478u);
  EXPECT_EQ(accountant.total_messages(), 6u);
}

TEST(Accounting, ResetClearsAllBuckets) {
  SignalingAccountant accountant;
  accountant.record(MessageCategory::stats, 100);
  accountant.record(MessageCategory::sync, 10);
  accountant.reset();
  EXPECT_EQ(accountant.total_bytes(), 0u);
  EXPECT_EQ(accountant.total_messages(), 0u);
  for (auto category :
       {MessageCategory::agent_management, MessageCategory::sync, MessageCategory::stats,
        MessageCategory::commands, MessageCategory::delegation}) {
    EXPECT_EQ(accountant.bytes(category), 0u);
    EXPECT_EQ(accountant.messages(category), 0u);
  }
}

TEST(Accounting, FrameHeaderConvention) {
  // Both master and agent record `wire.size() + net::kFrameHeaderBytes` per
  // message, so accounted bytes equal the framed bytes that actually cross
  // the control link (the Fig. 7 reconciliation invariant).
  const auto wire = pack(EchoRequest{.subframe = 1, .timestamp_us = 2});
  SignalingAccountant accountant;
  accountant.record(categorize(MessageType::echo_request, wire),
                    wire.size() + net::kFrameHeaderBytes);
  EXPECT_EQ(accountant.total_bytes(), wire.size() + net::kFrameHeaderBytes);
}

TEST(Accounting, CategorizeIsBodyDependentForEvents) {
  // The retry-path bug this PR fixes: re-categorizing a request with an
  // EMPTY body instead of its real body gives the wrong bucket for
  // body-dependent types. A ue_attach notification is agent management,
  // but `categorize(type, {})` sees a default-constructed body (whose
  // event decodes as subframe_tick) and mis-buckets it as sync. Retries
  // must reuse the category computed from the real body at enqueue time.
  EventNotification attach;
  attach.event = EventType::ue_attach;
  attach.rnti = 4;
  auto envelope = Envelope::decode(pack(attach)).value();
  EXPECT_EQ(categorize(envelope.type, envelope.body), MessageCategory::agent_management);
  EXPECT_EQ(categorize(envelope.type, {}), MessageCategory::sync);
  EXPECT_NE(categorize(envelope.type, envelope.body), categorize(envelope.type, {}));
}

// ------------------------------------------- wire fast path (zero-alloc) --
// docs/wire_fastpath.md: the arena/backpatch encoder and the reuse APIs
// must be byte-identical to the legacy fresh-encoder paths on every
// top-level message type.

// pack() via a reused scratch encoder (cleared between messages, after
// encoding unrelated garbage) must produce exactly pack()'s bytes.
template <typename M>
void expect_reused_encoder_identical(const M& message) {
  const auto fresh = pack(message, /*xid=*/9);
  WireEncoder scratch;
  // Dirty the scratch with an unrelated message first, as a long-lived
  // per-link encoder would be.
  Envelope dirty_header;
  dirty_header.xid = 1;
  encode_envelope(scratch, dirty_header, EchoRequest{.subframe = 7, .timestamp_us = 8});
  scratch.clear();
  Envelope header;
  header.xid = 9;
  encode_envelope(scratch, header, message);
  const auto reused = scratch.bytes();
  ASSERT_EQ(reused.size(), fresh.size()) << to_string(M::kType);
  EXPECT_TRUE(std::equal(reused.begin(), reused.end(), fresh.begin())) << to_string(M::kType);
}

TEST(WireFastPath, ReusedEncoderMatchesFreshAcrossAllMessageTypes) {
  expect_reused_encoder_identical(Hello{.enb_id = 3, .name = "enb", .capabilities = {"mac"}});
  expect_reused_encoder_identical(EchoRequest{.subframe = 42, .timestamp_us = 777});
  expect_reused_encoder_identical(EchoReply{.subframe = 42, .echoed_timestamp_us = 777});
  expect_reused_encoder_identical(EnbConfigRequest{});
  EnbConfigReply enb_reply;
  enb_reply.enb_id = 2;
  enb_reply.cells.push_back(CellConfigMsg::from(lte::CellConfig{}));
  expect_reused_encoder_identical(enb_reply);
  expect_reused_encoder_identical(UeConfigRequest{});
  UeConfigReply ue_reply;
  ue_reply.ues.push_back(UeConfigMsg{.rnti = 70, .primary_cell = 1});
  expect_reused_encoder_identical(ue_reply);
  expect_reused_encoder_identical(LcConfigRequest{});
  LcConfigReply lc_reply;
  lc_reply.channels.push_back(LcConfigMsg{.rnti = 70});
  expect_reused_encoder_identical(lc_reply);
  StatsRequest stats_request;
  stats_request.request_id = 4;
  stats_request.mode = ReportMode::periodic;
  stats_request.ues = {70, 71};
  expect_reused_encoder_identical(stats_request);
  StatsReply stats_reply;
  stats_reply.request_id = 4;
  stats_reply.subframe = 999;
  UeStatsReport report;
  report.rnti = 70;
  report.bsr_bytes = {1, 2, 3, 4};
  report.rsrp.push_back({1, -91.25});
  stats_reply.ue_reports.push_back(report);
  stats_reply.cell_reports.push_back(CellStatsReport{.cell_id = 1, .active_ues = 1});
  expect_reused_encoder_identical(stats_reply);
  DlMacConfig dl;
  dl.cell_id = 1;
  dl.target_subframe = 88;
  lte::DlDci dci;
  dci.rnti = 70;
  dci.rbs.set_range(0, 10);
  dci.mcs = 15;
  dl.dcis.push_back(dci);
  expect_reused_encoder_identical(dl);
  UlMacConfig ul;
  ul.cell_id = 1;
  lte::UlDci ul_dci;
  ul_dci.rnti = 70;
  ul_dci.rbs.set_range(4, 4);
  ul.dcis.push_back(ul_dci);
  expect_reused_encoder_identical(ul);
  expect_reused_encoder_identical(
      HandoverCommand{.rnti = 70, .source_cell = 1, .target_cell = 2});
  AbsConfig abs;
  abs.cell_id = 1;
  abs.pattern = lte::AbsPattern::per_frame(4);
  expect_reused_encoder_identical(abs);
  expect_reused_encoder_identical(CarrierRestriction{.cell_id = 1, .max_dl_prbs = 50});
  expect_reused_encoder_identical(DrxConfig{.rnti = 70, .cycle_ttis = 64});
  expect_reused_encoder_identical(ScellCommand{.rnti = 70, .activate = false});
  EventNotification event;
  event.event = EventType::vsf_failure;
  event.module = "mac";
  event.vsf = "dl_ue_scheduler";
  event.implementation = "remote";
  event.failure_kind = VsfFailureKind::overrun;
  event.failure_count = 2;
  event.detail = "deadline";
  expect_reused_encoder_identical(event);
  EventSubscription subscription;
  subscription.events = {EventType::ue_attach, EventType::ue_detach};
  expect_reused_encoder_identical(subscription);
  ControlDelegation delegation;
  delegation.module = "mac";
  delegation.vsf = "dl_ue_scheduler";
  delegation.implementation = "local_pf";
  delegation.blob = {1, 2, 3};
  expect_reused_encoder_identical(delegation);
  expect_reused_encoder_identical(PolicyReconfiguration{.yaml = "mac: {}"});
}

TEST(WireFastPath, BackpatchMatchesFieldMessageAcrossLengthBoundary) {
  // Nested payloads around the 1-byte/2-byte length-prefix boundary (127 /
  // 128) and well past it: begin/end_message must emit exactly what the
  // legacy two-encoder field_message path emits, including the widened
  // minimal varint prefix.
  for (std::size_t payload_len : {0u, 1u, 126u, 127u, 128u, 129u, 300u, 16383u, 16384u}) {
    const std::vector<std::uint8_t> payload(payload_len, 0x5a);
    WireEncoder legacy;
    WireEncoder sub;
    for (auto b : payload) sub.field_varint(1, b);
    legacy.field_message(7, sub);

    WireEncoder arena;
    const auto mark = arena.begin_message(7);
    for (auto b : payload) arena.field_varint(1, b);
    arena.end_message(mark);

    ASSERT_EQ(arena.size(), legacy.size()) << "payload_len=" << payload_len;
    const auto a = arena.bytes();
    const auto l = legacy.bytes();
    EXPECT_TRUE(std::equal(a.begin(), a.end(), l.begin())) << "payload_len=" << payload_len;
  }
}

TEST(WireFastPath, DeeplyNestedBackpatchIsByteIdenticalToLegacy) {
  // Two levels of nesting with a large inner payload, like a StatsReply
  // carrying RSRP sub-messages: inner end_message runs before the outer.
  WireEncoder legacy;
  {
    WireEncoder inner;
    for (int i = 0; i < 100; ++i) inner.field_varint(1, 200 + i);
    WireEncoder outer;
    outer.field_varint(1, 70);
    outer.field_message(10, inner);
    legacy.field_message(3, outer);
  }
  WireEncoder arena;
  {
    const auto outer = arena.begin_message(3);
    arena.field_varint(1, 70);
    const auto inner = arena.begin_message(10);
    for (int i = 0; i < 100; ++i) arena.field_varint(1, 200 + i);
    arena.end_message(inner);
    arena.end_message(outer);
  }
  ASSERT_EQ(arena.size(), legacy.size());
  const auto a = arena.bytes();
  const auto l = legacy.bytes();
  EXPECT_TRUE(std::equal(a.begin(), a.end(), l.begin()));
}

TEST(WireFastPath, DecodeIntoMatchesFreshDecode) {
  StatsReply reply;
  reply.request_id = 6;
  reply.subframe = 2000;
  for (lte::Rnti rnti = 70; rnti < 74; ++rnti) {
    UeStatsReport report;
    report.rnti = rnti;
    report.bsr_bytes = {10, 20, 30, 40};
    report.wb_cqi = 11;
    report.rsrp.push_back({1, -100.5});
    reply.ue_reports.push_back(report);
  }
  const auto wire = pack(reply, 3);

  Envelope reused_envelope;
  StatsReply reused_reply;
  // Pre-dirty the reused structs with a different shape (more reports than
  // the incoming message) so stale slots must be trimmed, not leak through.
  ASSERT_TRUE(Envelope::decode_into(pack(EchoRequest{}), reused_envelope).ok());
  for (int i = 0; i < 9; ++i) reused_reply.ue_reports.emplace_back();
  reused_reply.cell_reports.emplace_back();

  ASSERT_TRUE(Envelope::decode_into(wire, reused_envelope).ok());
  ASSERT_TRUE(StatsReply::decode_body_into(reused_envelope.body, reused_reply).ok());

  const auto fresh_envelope = Envelope::decode(wire).value();
  const auto fresh_reply = StatsReply::decode_body(fresh_envelope.body).value();
  EXPECT_EQ(reused_envelope.type, fresh_envelope.type);
  EXPECT_EQ(reused_envelope.xid, fresh_envelope.xid);
  EXPECT_EQ(reused_reply.request_id, fresh_reply.request_id);
  EXPECT_EQ(reused_reply.subframe, fresh_reply.subframe);
  ASSERT_EQ(reused_reply.ue_reports.size(), fresh_reply.ue_reports.size());
  ASSERT_EQ(reused_reply.cell_reports.size(), fresh_reply.cell_reports.size());
  for (std::size_t i = 0; i < fresh_reply.ue_reports.size(); ++i) {
    EXPECT_EQ(reused_reply.ue_reports[i].rnti, fresh_reply.ue_reports[i].rnti);
    EXPECT_EQ(reused_reply.ue_reports[i].bsr_bytes, fresh_reply.ue_reports[i].bsr_bytes);
    ASSERT_EQ(reused_reply.ue_reports[i].rsrp.size(), fresh_reply.ue_reports[i].rsrp.size());
    EXPECT_DOUBLE_EQ(reused_reply.ue_reports[i].rsrp[0].rsrp_dbm,
                     fresh_reply.ue_reports[i].rsrp[0].rsrp_dbm);
  }
}

TEST(WireFastPath, TrailingBsrEntriesAreCountedNotDropped) {
  // S3: a peer modeling more LC groups than kNumLcGroups sends extra
  // field-2 entries. The message must decode (forward compatibility), the
  // first kNumLcGroups entries must land, and the loss must be counted in
  // the decode-anomaly stat instead of vanishing silently.
  WireEncoder body;
  body.field_varint(1, 70);  // rnti
  for (std::uint32_t i = 0; i < lte::kNumLcGroups + 3; ++i) {
    body.field_varint(2, 100 + i);
  }
  body.field_svarint(3, 5);
  body.field_varint(4, 9);
  body.field_varint(5, 1234);
  WireEncoder reply_body;
  reply_body.field_varint(1, 8);   // request_id
  reply_body.field_svarint(2, 1);  // subframe
  reply_body.field_message(3, body);

  const auto before = decode_anomalies().bsr_overflow.load();
  auto decoded = StatsReply::decode_body(reply_body.bytes());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->ue_reports.size(), 1u);
  const auto& ue = decoded->ue_reports[0];
  EXPECT_EQ(ue.rnti, 70);
  for (std::uint32_t i = 0; i < lte::kNumLcGroups; ++i) {
    EXPECT_EQ(ue.bsr_bytes[i], 100 + i);
  }
  EXPECT_EQ(ue.wb_cqi, 9);
  EXPECT_EQ(decode_anomalies().bsr_overflow.load(), before + 3);
}

}  // namespace
}  // namespace flexran::proto
