// Control-channel fault tolerance (docs/fault_tolerance.md): session
// epochs and fencing, master-side disconnect detection and re-sync,
// request timeout/retry, agent reconnect with backoff, fallback
// re-promotion, and the end-to-end chaos run.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/remote_scheduler.h"
#include "controller/checkpoint_sink.h"
#include "net/sim_transport.h"
#include "proto/checkpoint.h"
#include "scenario/fault_injector.h"
#include "scenario/testbed.h"

namespace flexran {
namespace {

using ctrl::SessionState;

// Records lifecycle events delivered through the event notification
// service, as a fault-aware controller application would consume them.
class LifecycleRecorder final : public ctrl::App {
 public:
  std::string_view name() const override { return "lifecycle_recorder"; }
  void on_event(const ctrl::Event& event, ctrl::NorthboundApi&) override {
    switch (event.notification.event) {
      case proto::EventType::agent_disconnected:
        disconnected.push_back(event.agent);
        break;
      case proto::EventType::agent_reconnected:
        reconnected.push_back(event.agent);
        break;
      case proto::EventType::request_timeout:
        timed_out_xids.push_back(event.notification.xid);
        break;
      default:
        break;
    }
  }
  std::vector<ctrl::AgentId> disconnected;
  std::vector<ctrl::AgentId> reconnected;
  std::vector<std::uint32_t> timed_out_xids;
};

scenario::EnbSpec basic_spec(lte::EnbId id = 1) {
  scenario::EnbSpec spec;
  spec.enb.enb_id = id;
  spec.enb.cells[0].cell_id = id;
  spec.agent.name = "ft-" + std::to_string(id);
  return spec;
}

stack::UeProfile fixed_ue(int cqi, std::int64_t attach_after = 1) {
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  profile.attach_after_ttis = attach_after;
  return profile;
}

std::vector<std::uint8_t> make_stale_stats_reply(std::uint32_t epoch, std::int64_t subframe) {
  proto::StatsReply reply;
  reply.request_id = 1;
  reply.subframe = subframe;
  proto::WireEncoder enc;
  reply.encode_body(enc);
  proto::Envelope envelope;
  envelope.type = proto::MessageType::stats_reply;
  envelope.xid = 0;
  envelope.epoch = epoch;
  envelope.body = enc.take();
  return envelope.encode();
}

// ----------------------------------------------------------- session epochs --

TEST(SessionLifecycle, ReconnectBumpsEpochAndMasterResyncs) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(50);

  EXPECT_EQ(enb.agent->session_epoch(), 1u);
  const auto* node = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->epoch, 1u);
  EXPECT_EQ(node->state, SessionState::up);
  EXPECT_GT(enb.agent->reports().active_registrations(), 0u);

  enb.crash_agent();
  EXPECT_FALSE(enb.agent->connected());
  // Session-scoped agent state dies with the session.
  EXPECT_EQ(enb.agent->reports().active_registrations(), 0u);
  EXPECT_EQ(enb.agent->queued_decisions(), 0u);

  testbed.run_ttis(20);
  enb.restart_agent();
  testbed.run_ttis(50);

  EXPECT_TRUE(enb.agent->connected());
  EXPECT_EQ(enb.agent->session_epoch(), 2u);
  node = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->epoch, 2u);
  EXPECT_EQ(node->reconnects, 1u);
  EXPECT_EQ(node->state, SessionState::up);
  EXPECT_FALSE(node->is_stale());
  // The master reinstalled the default stats request on re-sync.
  EXPECT_GT(enb.agent->reports().active_registrations(), 0u);
}

TEST(SessionLifecycle, StaleEpochUpdatesAreFencedFromRib) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(30);

  enb.crash_agent();
  enb.restart_agent();
  testbed.run_ttis(30);
  ASSERT_EQ(enb.agent->session_epoch(), 2u);

  // A straggler from the pre-restart session: old epoch, absurd subframe.
  const std::int64_t sentinel = 77'777'777;
  ASSERT_TRUE(enb.agent_side->send(make_stale_stats_reply(/*epoch=*/1, sentinel)).ok());
  const auto fenced_before = testbed.master().fenced_updates();
  testbed.run_ttis(20);

  EXPECT_EQ(testbed.master().fenced_updates(), fenced_before + 1);
  const auto* node = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(node, nullptr);
  EXPECT_LT(node->last_subframe, sentinel);

  // Current-epoch traffic still lands.
  EXPECT_EQ(node->state, SessionState::up);
}

TEST(SessionLifecycle, AgentFencesStaleMasterMessages) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(30);

  enb.crash_agent();
  enb.restart_agent();
  testbed.run_ttis(5);
  ASSERT_EQ(enb.agent->session_epoch(), 2u);

  // A master command addressed to the previous incarnation of the agent.
  proto::StatsRequest request;
  request.request_id = 99;
  request.mode = proto::ReportMode::periodic;
  request.periodicity_ttis = 1;
  request.flags = proto::stats_flags::kAll;
  proto::WireEncoder enc;
  request.encode_body(enc);
  proto::Envelope envelope;
  envelope.type = proto::MessageType::stats_request;
  envelope.xid = 4242;
  envelope.epoch = 1;  // stale
  envelope.body = enc.take();
  const auto fenced_before = enb.agent->fenced_messages();
  ASSERT_TRUE(enb.master_side->send(envelope.encode()).ok());
  testbed.run_ttis(10);

  EXPECT_EQ(enb.agent->fenced_messages(), fenced_before + 1);
}

TEST(SessionLifecycle, CorruptedHelloIsRecoveredByHelloRetry) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(30);

  // The restart hello arrives corrupted at the master; nothing else from
  // the new session is in flight, so only the agent's hello retry (and the
  // epoch fence on the master's old-epoch sends) can recover the session.
  enb.master_side->corrupt_next(1);
  enb.crash_agent();
  enb.restart_agent();
  const auto decode_errors_before = testbed.master().rx_decode_errors();
  testbed.run_ttis(5);
  EXPECT_EQ(testbed.master().rx_decode_errors(), decode_errors_before + 1);

  testbed.run_ttis(enb.agent->config().hello_retry_ttis + 50);
  EXPECT_GE(enb.agent->hello_retries(), 1u);
  const auto* node = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->epoch, 2u);
  EXPECT_EQ(node->state, SessionState::up);
}

TEST(SessionLifecycle, DuplicatedFramesAreAbsorbedWithoutEpochChurn) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(50);

  const auto* node = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(node, nullptr);
  const auto epoch_before = node->epoch;

  // Re-deliver the next 8 frames in each direction verbatim (the
  // `duplicate` fault kind). Every copy carries an already-seen xid and
  // the live epoch, so both endpoints must absorb them as no-ops: no
  // session churn, no reconnect, no decode errors. Steady state is mostly
  // uplink (per-TTI stats), so drive downlink commands to give the
  // agent-side endpoint frames to re-deliver.
  enb.master_side->duplicate_next(8);
  enb.agent_side->duplicate_next(8);
  const auto decode_errors_before = testbed.master().rx_decode_errors();
  for (int i = 0; i < 8; ++i) {
    proto::DrxConfig drx;
    drx.rnti = 70;
    drx.cycle_ttis = 40;
    drx.on_duration_ttis = static_cast<std::uint16_t>(4 + i);
    ASSERT_TRUE(testbed.master().send_drx_config(enb.agent_id, drx).ok());
    testbed.run_ttis(3);
  }
  testbed.run_ttis(76);

  EXPECT_GE(enb.master_side->frames_duplicated(), 8u);
  EXPECT_GE(enb.agent_side->frames_duplicated(), 8u);
  EXPECT_EQ(testbed.master().rx_decode_errors(), decode_errors_before);
  EXPECT_TRUE(enb.agent->connected());
  EXPECT_EQ(enb.agent->session_epoch(), epoch_before);
  node = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->epoch, epoch_before);
  EXPECT_EQ(node->reconnects, 0u);
  EXPECT_EQ(node->state, SessionState::up);
  EXPECT_FALSE(node->is_stale());
}

TEST(SessionLifecycle, ReconnectBacksOffWhilePartitioned) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(20);

  enb.set_control_down(true);
  enb.crash_agent();
  enb.restart_agent();
  testbed.run_ttis(300);
  // The reconnect provider refuses while the channel is down; backoff
  // keeps attempts bounded (20ms initial, doubling to the 1s cap).
  EXPECT_GE(enb.agent->reconnect_attempts(), 3u);
  EXPECT_LE(enb.agent->reconnect_attempts(), 12u);
  EXPECT_FALSE(enb.agent->connected());

  enb.set_control_down(false);
  testbed.run_ttis(1200);
  EXPECT_TRUE(enb.agent->connected());
  EXPECT_EQ(enb.agent->session_epoch(), 2u);
  const auto* node = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->state, SessionState::up);
}

// ------------------------------------------------- disconnect detection --

TEST(SessionLifecycle, SilenceWalksUpStaleDownAndBackWithEvents) {
  ctrl::MasterConfig config = scenario::per_tti_master_config();
  config.agent_timeout_us = sim::from_ms(30);
  config.agent_disconnect_timeout_us = sim::from_ms(100);
  scenario::Testbed testbed(std::move(config));
  auto* recorder = static_cast<LifecycleRecorder*>(
      testbed.master().add_app(std::make_unique<LifecycleRecorder>()));
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(20);

  enb.set_control_down(true);
  testbed.run_ttis(150);  // past the 100 ms disconnect timeout
  const auto* node = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->state, SessionState::down);
  EXPECT_TRUE(node->is_stale());
  ASSERT_EQ(recorder->disconnected.size(), 1u);
  EXPECT_EQ(recorder->disconnected[0], enb.agent_id);
  EXPECT_TRUE(recorder->reconnected.empty());

  enb.set_control_down(false);
  testbed.run_ttis(60);
  node = testbed.master().rib().find_agent(enb.agent_id);
  EXPECT_EQ(node->state, SessionState::up);
  EXPECT_FALSE(node->is_stale());
  ASSERT_EQ(recorder->reconnected.size(), 1u);
  EXPECT_EQ(recorder->reconnected[0], enb.agent_id);
  // Same session resumed: the partition did not force a new epoch.
  EXPECT_EQ(node->epoch, 1u);
  EXPECT_EQ(enb.agent->session_epoch(), 1u);
}

// ------------------------------------------------------ request tracking --

TEST(RequestTracking, TimedOutRequestIsRetriedAndCompletes) {
  ctrl::MasterConfig config = scenario::per_tti_master_config();
  config.agent_timeout_us = sim::from_ms(30);
  config.agent_disconnect_timeout_us = sim::from_ms(80);
  config.request_timeout_us = sim::from_ms(20);
  scenario::Testbed testbed(std::move(config));
  auto& enb = testbed.add_enb(basic_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(50);
  ASSERT_EQ(testbed.master().requests_retried(), 0u);

  // Partition long enough to go down, then corrupt the first re-sync
  // requests after the heal: their replies never come and the timeout /
  // retry path must recover them.
  enb.set_control_down(true);
  testbed.run_ttis(120);
  enb.agent_side->corrupt_next(2);  // agent_side receives master->agent
  enb.set_control_down(false);
  testbed.run_ttis(200);

  EXPECT_GE(testbed.master().requests_retried(), 1u);
  EXPECT_EQ(testbed.master().requests_failed(), 0u);
  EXPECT_EQ(testbed.master().inflight_requests(), 0u);
  const auto* node = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->state, SessionState::up);
}

TEST(RequestTracking, ExhaustedRetriesSurfaceRequestTimeoutEvent) {
  ctrl::MasterConfig config = scenario::per_tti_master_config();
  config.request_timeout_us = sim::from_ms(10);
  config.request_max_retries = 2;
  scenario::Testbed testbed(std::move(config));
  auto* recorder = static_cast<LifecycleRecorder*>(
      testbed.master().add_app(std::make_unique<LifecycleRecorder>()));
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(20);

  enb.set_control_down(true);
  proto::StatsRequest request;
  request.request_id = 55;
  request.mode = proto::ReportMode::one_off;
  request.flags = proto::stats_flags::kAll;
  ASSERT_TRUE(testbed.master().request_stats(enb.agent_id, request).ok());
  EXPECT_EQ(testbed.master().inflight_requests(), 1u);

  testbed.run_ttis(100);
  EXPECT_EQ(testbed.master().inflight_requests(), 0u);
  EXPECT_EQ(testbed.master().requests_retried(), 2u);
  EXPECT_EQ(testbed.master().requests_failed(), 1u);
  ASSERT_EQ(recorder->timed_out_xids.size(), 1u);
  EXPECT_NE(recorder->timed_out_xids[0], 0u);
  enb.set_control_down(false);
}

TEST(RequestTracking, RetriesKeepOriginalSignalingCategory) {
  // Regression for the retry-path accounting bug: sweep_requests used to
  // re-categorize the stored wire image with an EMPTY body
  // (`categorize(request.type, {})`), which both mis-buckets
  // body-dependent message types (see Accounting.CategorizeIsBodyDependent
  // ForEvents in proto_test) and re-derives the traffic class the resend
  // uses. The category and class are now stored with the pending request
  // at enqueue time; every retry must land in the same bucket as the
  // original send, with the same framed byte size.
  ctrl::MasterConfig config = scenario::per_tti_master_config();
  config.auto_configure = false;       // keep the config bucket quiet
  config.echo_period_cycles = 0;       // no periodic management traffic
  config.default_stats_request.reset();
  config.request_timeout_us = sim::from_ms(10);
  config.request_max_retries = 2;
  scenario::Testbed testbed(std::move(config));
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(20);
  const auto& tx = testbed.master().tx_accounting(enb.agent_id);
  const std::uint64_t stats_msgs_before = tx.messages(proto::MessageCategory::stats);
  ASSERT_EQ(stats_msgs_before, 0u);

  // Partition, then issue a tracked stats request: the original send plus
  // every retry fires into the void.
  enb.set_control_down(true);
  proto::StatsRequest request;
  request.request_id = 77;
  request.mode = proto::ReportMode::one_off;
  request.flags = proto::stats_flags::kAll;
  ASSERT_TRUE(testbed.master().request_stats(enb.agent_id, request).ok());
  testbed.run_ttis(2);
  testbed.master().quiesce();
  const std::uint64_t first_bytes = tx.bytes(proto::MessageCategory::stats);
  ASSERT_EQ(tx.messages(proto::MessageCategory::stats), 1u);
  ASSERT_GT(first_bytes, 0u);

  testbed.run_ttis(100);
  EXPECT_EQ(testbed.master().requests_retried(), 2u);
  // All retries accounted in the stats bucket (not re-derived into another
  // category), each with the identical wire + frame-header size.
  EXPECT_EQ(tx.messages(proto::MessageCategory::stats), 3u);
  EXPECT_EQ(tx.bytes(proto::MessageCategory::stats), 3 * first_bytes);
  // Nothing leaked into the other buckets.
  EXPECT_EQ(tx.messages(proto::MessageCategory::commands), 0u);
  EXPECT_EQ(tx.messages(proto::MessageCategory::delegation), 0u);
  enb.set_control_down(false);
}

TEST(RequestTracking, RemoveAgentPurgesQueuesAndInflight) {
  // Raw master without a ticker: received updates pile up in pending_ and
  // queued events stay queued, so remove_agent's purge is observable.
  sim::Simulator sim;
  ctrl::MasterConfig config = scenario::per_tti_master_config();
  config.request_timeout_us = sim::from_ms(50);
  ctrl::MasterController master(sim, config);
  auto* recorder =
      static_cast<LifecycleRecorder*>(master.add_app(std::make_unique<LifecycleRecorder>()));
  auto link_a = net::make_sim_transport_pair(sim);
  auto link_b = net::make_sim_transport_pair(sim);
  const auto first = master.add_agent(*link_a.a);
  const auto second = master.add_agent(*link_b.a);

  ASSERT_TRUE(link_a.b->send(make_stale_stats_reply(/*epoch=*/0, 100)).ok());
  ASSERT_TRUE(link_a.b->send(make_stale_stats_reply(/*epoch=*/0, 101)).ok());
  ASSERT_TRUE(link_b.b->send(make_stale_stats_reply(/*epoch=*/0, 100)).ok());
  sim.run();
  EXPECT_EQ(master.pending_updates(), 3u);

  proto::StatsRequest request;
  request.request_id = 7;
  request.mode = proto::ReportMode::one_off;
  request.flags = proto::stats_flags::kAll;
  ASSERT_TRUE(master.request_stats(first, request).ok());
  ASSERT_TRUE(master.request_stats(second, request).ok());
  EXPECT_EQ(master.inflight_requests(), 2u);

  // The transport dies: the agent's session ends. Its in-flight request
  // fails and its queued updates are purged, but the AGENT_DISCONNECTED
  // event is now sitting in the event queue.
  link_a.a->inject_disconnect(util::Error::transport_failure("peer reset"));
  EXPECT_EQ(master.pending_updates(), 1u);
  EXPECT_EQ(master.inflight_requests(), 1u);
  const auto failed = master.requests_failed();
  EXPECT_EQ(failed, 1u);

  // More state accumulates for the doomed agent before the removal.
  ASSERT_TRUE(link_a.b->send(make_stale_stats_reply(/*epoch=*/0, 102)).ok());
  sim.run();
  ASSERT_TRUE(master.request_stats(first, request).ok());
  EXPECT_EQ(master.pending_updates(), 2u);
  EXPECT_EQ(master.inflight_requests(), 2u);

  master.remove_agent(first);
  EXPECT_EQ(master.pending_updates(), 1u);    // only the other agent's update
  EXPECT_EQ(master.inflight_requests(), 1u);  // only the other agent's request
  // Administrative removal drops the request without reporting a failure.
  EXPECT_EQ(master.requests_failed(), failed);

  master.run_cycle();
  // The queued lifecycle event was purged with the agent: apps never see
  // events for an agent that no longer exists.
  EXPECT_TRUE(recorder->disconnected.empty());
}

// ------------------------------------------------------ fallback two-way --

TEST(Fallback, RemoteSchedulerRepromotedAfterOutage) {
  ctrl::MasterConfig config = scenario::per_tti_master_config();
  scenario::Testbed testbed(std::move(config));
  apps::RemoteSchedulerConfig app_config;
  app_config.schedule_ahead_sf = 4;
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>(app_config));

  scenario::EnbSpec spec = basic_spec();
  spec.agent.dl_scheduler = "remote";
  spec.agent.remote_fallback_ttis = 20;
  spec.agent.fallback_scheduler = "local_rr";
  auto& enb = testbed.add_enb(spec);
  const auto rnti = testbed.add_ue(0, fixed_ue(12));
  // Keep the DL queue non-empty: the remote scheduler only sends decisions
  // for UEs with data, and those per-TTI decisions are the master contact
  // that keeps the agent from falling back.
  auto* dp = enb.data_plane.get();
  testbed.on_tti([&testbed, dp, rnti](std::int64_t) {
    const auto* ue = dp->ue(rnti);
    if (ue != nullptr && ue->dl_queue.total_bytes() < 60'000) {
      (void)testbed.epc().downlink(rnti, 60'000);
    }
  });
  testbed.run_ttis(50);
  ASSERT_EQ(enb.agent->mac().active_implementation(agent::MacControlModule::kDlSchedulerSlot),
            "remote");

  enb.set_control_down(true);
  testbed.run_ttis(60);
  EXPECT_EQ(enb.agent->fallback_activations(), 1u);
  EXPECT_EQ(enb.agent->mac().active_implementation(agent::MacControlModule::kDlSchedulerSlot),
            "local_rr");

  enb.set_control_down(false);
  testbed.run_ttis(60);
  // Master messages resumed: the DL scheduler is handed back to remote
  // control without any operator intervention.
  EXPECT_EQ(enb.agent->fallback_recoveries(), 1u);
  EXPECT_EQ(enb.agent->mac().active_implementation(agent::MacControlModule::kDlSchedulerSlot),
            "remote");
}

// ------------------------------------------------------------- chaos run --

TEST(Chaos, ScriptedFaultsEndFullyRecovered) {
  ctrl::MasterConfig config = scenario::per_tti_master_config(/*stats_period_ttis=*/2);
  config.agent_timeout_us = sim::from_ms(50);
  config.agent_disconnect_timeout_us = sim::from_ms(200);
  config.request_timeout_us = sim::from_ms(30);
  scenario::Testbed testbed(std::move(config));
  auto* recorder = static_cast<LifecycleRecorder*>(
      testbed.master().add_app(std::make_unique<LifecycleRecorder>()));
  apps::RemoteSchedulerConfig app_config;
  app_config.schedule_ahead_sf = 8;
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>(app_config));

  for (lte::EnbId id = 1; id <= 2; ++id) {
    scenario::EnbSpec spec = basic_spec(id);
    spec.agent.dl_scheduler = "remote";
    spec.agent.remote_fallback_ttis = 30;
    spec.agent.fallback_scheduler = "local_rr";
    spec.uplink.delay = sim::from_ms(2);
    spec.downlink.delay = sim::from_ms(2);
    testbed.add_enb(spec);
  }
  const auto ue_a = testbed.add_ue(0, fixed_ue(15));
  const auto ue_b = testbed.add_ue(1, fixed_ue(12, /*attach_after=*/2));
  auto saturate = [&](std::size_t index, lte::Rnti rnti) {
    auto* dp = testbed.enb(index).data_plane.get();
    testbed.on_tti([&testbed, dp, rnti](std::int64_t) {
      const auto* ue = dp->ue(rnti);
      if (ue != nullptr && ue->dl_queue.total_bytes() < 60'000) {
        (void)testbed.epc().downlink(rnti, 60'000);
      }
    });
  };
  saturate(0, ue_a);
  saturate(1, ue_b);

  scenario::FaultInjector injector(testbed);
  injector.schedule_all({
      {.at_s = 0.5, .kind = scenario::FaultKind::partition, .enb = 0, .duration_s = 0.4},
      {.at_s = 0.89, .kind = scenario::FaultKind::corrupt, .enb = 0, .count = 2},
      {.at_s = 1.2, .kind = scenario::FaultKind::delay_spike, .enb = 1, .duration_s = 0.3,
       .delay_ms = 20.0},
      {.at_s = 1.8, .kind = scenario::FaultKind::flap, .enb = 0, .count = 3, .period_s = 0.05},
      {.at_s = 2.5, .kind = scenario::FaultKind::crash, .enb = 1, .duration_s = 0.25},
  });

  testbed.run_seconds(3.5);  // final heal is the crash restart at ~2.75s

  // After the crashed agent restarts, throw a pre-restart-epoch straggler
  // at the master; it must not mutate the RIB.
  auto& crashed = testbed.enb(1);
  ASSERT_EQ(crashed.agent->session_epoch(), 2u);
  const std::int64_t sentinel = 88'888'888;
  const auto fenced_before = testbed.master().fenced_updates();
  ASSERT_TRUE(crashed.agent_side->send(make_stale_stats_reply(/*epoch=*/1, sentinel)).ok());

  const std::uint64_t bytes_a_before =
      testbed.metrics().total_bytes(1, ue_a, lte::Direction::downlink);
  const std::uint64_t bytes_b_before =
      testbed.metrics().total_bytes(2, ue_b, lte::Direction::downlink);
  testbed.run_seconds(1.0);

  // 1. Every agent ends re-synced, not stale.
  for (auto& enb : testbed.enbs()) {
    const auto* node = testbed.master().rib().find_agent(enb->agent_id);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->state, SessionState::up) << "agent " << enb->agent_id;
    EXPECT_FALSE(node->is_stale());
    EXPECT_EQ(node->epoch, enb->agent->session_epoch());
    EXPECT_TRUE(enb->agent->connected());
  }

  // 2. No pre-restart-epoch message mutated the RIB.
  EXPECT_EQ(testbed.master().fenced_updates(), fenced_before + 1);
  EXPECT_LT(testbed.master().rib().find_agent(crashed.agent_id)->last_subframe, sentinel);

  // 3. Every timed-out request was retried to completion or reported
  //    failed; nothing is left dangling.
  EXPECT_EQ(testbed.master().inflight_requests(), 0u);
  EXPECT_EQ(recorder->timed_out_xids.size(), testbed.master().requests_failed());

  // 4. Lifecycle events reached the apps.
  EXPECT_GE(recorder->reconnected.size(), 1u);

  // 5. UE throughput recovered after the final heal: both cells moved
  //    real traffic in the last simulated second (remote scheduling at
  //    CQI >= 12 sustains well over 4 Mb/s; a dead control plane would
  //    strand the remote-scheduled cells near zero).
  const double mbps_a = scenario::Metrics::mbps(
      testbed.metrics().total_bytes(1, ue_a, lte::Direction::downlink) - bytes_a_before, 1.0);
  const double mbps_b = scenario::Metrics::mbps(
      testbed.metrics().total_bytes(2, ue_b, lte::Direction::downlink) - bytes_b_before, 1.0);
  EXPECT_GT(mbps_a, 4.0);
  EXPECT_GT(mbps_b, 4.0);
}

// ------------------------------------------------- master crash recovery --

ctrl::MasterConfig recovery_config(double tokens_per_s,
                                   std::shared_ptr<ctrl::CheckpointSink> sink = nullptr,
                                   sim::TimeUs checkpoint_period = 0) {
  ctrl::MasterConfig config = scenario::per_tti_master_config();
  config.agent_timeout_us = sim::from_ms(30);
  config.agent_disconnect_timeout_us = sim::from_ms(100);
  config.recovery.enabled = true;
  config.recovery.resync_tokens_per_s = tokens_per_s;
  config.recovery.resync_burst = 1.0;
  config.recovery.resync_retry_after_ms = 20.0;
  config.recovery.readiness_quorum = 1.0;
  config.recovery.readiness_timeout_us = sim::from_ms(3000);
  config.recovery.checkpoint_sink = std::move(sink);
  config.recovery.checkpoint_period_us = checkpoint_period;
  return config;
}

std::vector<std::uint8_t> make_master_frame(std::uint32_t master_epoch, std::uint32_t xid) {
  proto::StatsRequest request;
  request.request_id = 4000 + xid;
  request.mode = proto::ReportMode::periodic;
  request.periodicity_ttis = 1;
  proto::WireEncoder enc;
  request.encode_body(enc);
  proto::Envelope envelope;
  envelope.type = proto::MessageType::stats_request;
  envelope.xid = xid;
  envelope.master_epoch = master_epoch;
  envelope.body = enc.take();
  return envelope.encode();
}

// The session state machine, walked transition by transition (the table in
// docs/fault_tolerance.md): up -> stale (silence), stale -> down
// (disconnect timeout), down -> resyncing (traffic heals), resyncing -> up
// (config reply); then a master restart resets every session to down and
// paced admission holds the overflow agent in `resyncing` until a token
// frees up.
TEST(MasterRecovery, SessionStateMachineWalksTheTable) {
  // One token every 200 ms: with burst 1, the second re-sync must wait.
  scenario::Testbed testbed(recovery_config(/*tokens_per_s=*/5.0));
  auto& enb_a = testbed.add_enb(basic_spec(1));
  auto& enb_b = testbed.add_enb(basic_spec(2));
  testbed.run_ttis(400);  // both sessions up; the startup burst has refilled

  auto state_of = [&](scenario::Testbed::Enb& enb) {
    const auto* node = testbed.master().rib().find_agent(enb.agent_id);
    return node == nullptr ? SessionState::down : node->state;
  };
  ASSERT_EQ(state_of(enb_a), SessionState::up);
  ASSERT_EQ(state_of(enb_b), SessionState::up);

  // up -> stale: silence past agent_timeout (30 ms).
  enb_a.set_control_down(true);
  testbed.run_ttis(60);
  EXPECT_EQ(state_of(enb_a), SessionState::stale);
  EXPECT_EQ(state_of(enb_b), SessionState::up);

  // stale -> down: silence past the disconnect timeout (100 ms).
  testbed.run_ttis(100);
  EXPECT_EQ(state_of(enb_a), SessionState::down);

  // down -> resyncing -> up: the heal delivers agent traffic, the master
  // re-syncs the session (one agent, one token: admitted immediately).
  enb_a.set_control_down(false);
  testbed.run_ttis(300);
  EXPECT_EQ(state_of(enb_a), SessionState::up);

  // Master restart: every session resets to a down husk, then both agents
  // offer re-sync against the new incarnation. Burst 1 admits one agent;
  // the other is deferred and parks in `resyncing` until the next token
  // (~200 ms out).
  ASSERT_EQ(testbed.master().incarnation(), 1u);
  testbed.master().restart();
  EXPECT_EQ(testbed.master().incarnation(), 2u);
  EXPECT_TRUE(testbed.master().recovering());
  EXPECT_EQ(state_of(enb_a), SessionState::down);
  EXPECT_EQ(state_of(enb_b), SessionState::down);

  testbed.run_ttis(60);
  const bool a_waiting = state_of(enb_a) == SessionState::resyncing;
  const bool b_waiting = state_of(enb_b) == SessionState::resyncing;
  EXPECT_TRUE(a_waiting || b_waiting) << "one re-sync should be deferred";
  EXPECT_GE(testbed.master().resyncs_paced(), 1u);

  testbed.run_ttis(500);
  EXPECT_EQ(state_of(enb_a), SessionState::up);
  EXPECT_EQ(state_of(enb_b), SessionState::up);
  EXPECT_FALSE(testbed.master().recovering());
  EXPECT_EQ(testbed.master().agents_resynced(), 2u);
  EXPECT_GT(testbed.master().last_recovery_duration(), 0);
  // Both agents adopted the new incarnation and saw exactly one restart.
  EXPECT_EQ(enb_a.agent->master_incarnation(), 2u);
  EXPECT_EQ(enb_b.agent->master_restarts_seen(), 1u);
}

// Incarnation fencing, the agent side: a frame stamped with the dead
// master's incarnation must be dropped without touching agent state, while
// a higher incarnation triggers adoption and a re-hello.
TEST(MasterRecovery, AgentFencesOldIncarnationAndAdoptsNewer) {
  scenario::Testbed testbed(recovery_config(/*tokens_per_s=*/1000.0));
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(100);
  ASSERT_EQ(enb.agent->master_incarnation(), 1u);

  testbed.master().restart();
  testbed.run_ttis(300);
  ASSERT_EQ(enb.agent->master_incarnation(), 2u);
  ASSERT_EQ(enb.agent->master_restarts_seen(), 1u);

  // A command the dead incarnation had in flight: fenced, not applied.
  const auto fenced_before = enb.agent->fenced_incarnation_messages();
  const auto registrations_before = enb.agent->reports().active_registrations();
  ASSERT_TRUE(enb.master_side->send(make_master_frame(/*master_epoch=*/1, /*xid=*/7)).ok());
  testbed.run_ttis(10);
  EXPECT_EQ(enb.agent->fenced_incarnation_messages(), fenced_before + 1);
  EXPECT_EQ(enb.agent->reports().active_registrations(), registrations_before);

  // The same frame from the live incarnation is applied normally.
  ASSERT_TRUE(enb.master_side->send(make_master_frame(/*master_epoch=*/2, /*xid=*/8)).ok());
  testbed.run_ttis(10);
  EXPECT_EQ(enb.agent->reports().active_registrations(), registrations_before + 1);
}

// Deterministic per-agent reconnect jitter: two agents crashing at the
// same instant must not retry in lockstep (a fleet reconnecting after a
// master outage would otherwise stampede in synchronized waves).
TEST(MasterRecovery, ReconnectJitterDesynchronizesAgents) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb_a = testbed.add_enb(basic_spec(1));
  auto& enb_b = testbed.add_enb(basic_spec(2));
  testbed.run_ttis(20);

  // The jitter scale is a pure function of agent identity: stable across
  // calls, different across agents.
  const auto backoff = sim::from_ms(20);
  EXPECT_EQ(enb_a.agent->jittered_backoff(backoff), enb_a.agent->jittered_backoff(backoff));
  EXPECT_NE(enb_a.agent->jittered_backoff(backoff), enb_b.agent->jittered_backoff(backoff));
  EXPECT_GE(enb_a.agent->jittered_backoff(backoff), backoff);

  // End to end: both agents crash and reconnect against a dead channel at
  // the same instant; their retry timelines must diverge.
  for (auto* enb : {&enb_a, &enb_b}) {
    enb->set_control_down(true);
    enb->crash_agent();
    enb->restart_agent();
  }
  testbed.run_ttis(400);
  const auto& times_a = enb_a.agent->reconnect_attempt_times();
  const auto& times_b = enb_b.agent->reconnect_attempt_times();
  ASSERT_GE(times_a.size(), 3u);
  ASSERT_GE(times_b.size(), 3u);
  EXPECT_NE(times_a, times_b);

  for (auto* enb : {&enb_a, &enb_b}) enb->set_control_down(false);
  testbed.run_ttis(1200);
  EXPECT_TRUE(enb_a.agent->connected());
  EXPECT_TRUE(enb_b.agent->connected());
}

// Cold restart end to end: volatile state is gone, the fleet re-syncs
// against the new incarnation, and the command gate refuses app commands
// aimed at agents that have not re-synced yet.
TEST(MasterRecovery, ColdRestartRebuildsAndHoldsCommands) {
  scenario::Testbed testbed(recovery_config(/*tokens_per_s=*/1000.0));
  auto& enb_a = testbed.add_enb(basic_spec(1));
  auto& enb_b = testbed.add_enb(basic_spec(2));
  testbed.run_ttis(100);

  testbed.master().restart();
  EXPECT_EQ(testbed.master().master_restarts(), 1u);
  EXPECT_TRUE(testbed.master().recovering());
  EXPECT_FALSE(testbed.master().checkpoint_loaded());

  // A command against a not-yet-re-synced agent is held, not delivered.
  const auto held_before = testbed.master().commands_held();
  proto::DlMacConfig decision;
  decision.cell_id = 1;
  decision.target_subframe = 1;
  auto status = testbed.master().send_dl_mac_config(enb_a.agent_id, decision);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(testbed.master().commands_held(), held_before + 1);

  testbed.run_ttis(500);
  EXPECT_FALSE(testbed.master().recovering());
  EXPECT_EQ(testbed.master().agents_resynced(), 2u);
  for (auto* enb : {&enb_a, &enb_b}) {
    const auto* node = testbed.master().rib().find_agent(enb->agent_id);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->state, SessionState::up);
    // The cold rebuild recovered the full configuration from re-sync.
    EXPECT_FALSE(node->cells.empty());
    EXPECT_FALSE(node->name.empty());
  }
  // Commands flow again once recovery is over.
  EXPECT_TRUE(testbed.master().send_dl_mac_config(enb_a.agent_id, decision).ok());
}

// Warm restart: the checkpoint restores agent configs and policy history,
// the fleet takes the delta re-sync path, and last-known-good policies are
// re-pushed as each agent comes back.
TEST(MasterRecovery, WarmRestartLoadsCheckpointAndRepushesPolicies) {
  auto sink = std::make_shared<ctrl::MemoryCheckpointSink>();
  scenario::Testbed testbed(
      recovery_config(/*tokens_per_s=*/1000.0, sink, sim::from_ms(100)));
  auto& enb_a = testbed.add_enb(basic_spec(1));
  auto& enb_b = testbed.add_enb(basic_spec(2));
  testbed.run_ttis(150);
  for (auto* enb : {&enb_a, &enb_b}) {
    ASSERT_TRUE(testbed.master()
                    .send_policy(enb->agent_id,
                                 "mac:\n  dl_ue_scheduler:\n    behavior: local_rr\n")
                    .ok());
  }
  testbed.run_ttis(200);  // policies applied + at least one checkpoint after
  ASSERT_GT(testbed.master().checkpoints_saved(), 0u);
  ASSERT_TRUE(sink->has_checkpoint());

  testbed.master().restart();
  EXPECT_TRUE(testbed.master().checkpoint_loaded());
  // The checkpoint seeded the RIB before any agent spoke: names, configs
  // and epochs survive the crash.
  for (auto* enb : {&enb_a, &enb_b}) {
    const auto* node = testbed.master().rib().find_agent(enb->agent_id);
    ASSERT_NE(node, nullptr);
    EXPECT_FALSE(node->cells.empty());
    EXPECT_EQ(node->epoch, enb->agent->session_epoch());
  }

  testbed.run_ttis(400);
  EXPECT_FALSE(testbed.master().recovering());
  EXPECT_EQ(testbed.master().agents_resynced(), 2u);
  EXPECT_EQ(testbed.master().policies_repushed(), 2u);
  for (auto* enb : {&enb_a, &enb_b}) {
    const auto* node = testbed.master().rib().find_agent(enb->agent_id);
    EXPECT_EQ(node->state, SessionState::up);
  }
  // Durable incarnation floor: even a sink written at incarnation N must
  // produce a restart at > N.
  EXPECT_GE(testbed.master().incarnation(), 2u);
}

// Torn-write regression: an injected mid-write failure leaves a torn .tmp
// behind, but the atomic tmp+rename protocol must keep the last complete
// checkpoint loadable -- a failed save never clobbers durable state.
TEST(MasterRecovery, TornCheckpointWriteNeverClobbersLastGood) {
  const std::string path = ::testing::TempDir() + "flexran_ckpt_torn.bin";
  std::remove(path.c_str());
  ctrl::FileCheckpointSink sink(path);
  const std::vector<std::uint8_t> good = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(sink.save(good).ok());

  sink.fail_next_saves(1);
  const std::vector<std::uint8_t> newer = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  const auto failed = sink.save(newer);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(sink.saves_failed(), 1u);
  // The torn write landed in the .tmp only; the published file is intact.
  auto loaded = sink.load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, good);

  // The retry (no injection left) publishes the new bytes atomically.
  ASSERT_TRUE(sink.save(newer).ok());
  loaded = sink.load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, newer);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

// Write-failure hardening in the master's checkpoint loop: failed saves
// are counted, retried with backoff (sooner than the normal period), and
// the sink ends up with a good checkpoint once the fault clears.
TEST(MasterRecovery, CheckpointWriteFailuresRetryWithBackoff) {
  auto sink = std::make_shared<ctrl::MemoryCheckpointSink>();
  scenario::Testbed testbed(
      recovery_config(/*tokens_per_s=*/1000.0, sink, sim::from_ms(100)));
  testbed.add_enb(basic_spec(1));
  sink->fail_next_saves(2);
  testbed.run_ttis(400);

  EXPECT_EQ(testbed.master().checkpoint_write_failures(), 2u);
  EXPECT_EQ(sink->saves_failed(), 2u);
  // Both failures were retried inside the run: a good checkpoint exists
  // and regular-period checkpointing resumed after the recovery.
  ASSERT_TRUE(sink->has_checkpoint());
  EXPECT_GT(testbed.master().checkpoints_saved(), 0u);
  // 400 ttis / 100 ms period = ~4 regular slots; the 10-20 ms backoff
  // retries squeeze the two failed attempts in without eating a slot.
  EXPECT_GE(testbed.master().checkpoints_saved() +
                testbed.master().checkpoint_write_failures(),
            4u);
}

// The checkpoint codec round-trips durable master state byte-for-byte
// through a file sink (the deployment path; Memory sinks cover the tests).
TEST(MasterRecovery, FileCheckpointSinkRoundTrips) {
  const std::string path = ::testing::TempDir() + "flexran_ckpt_test.bin";
  ctrl::FileCheckpointSink sink(path);
  proto::MasterCheckpoint checkpoint;
  checkpoint.incarnation = 7;
  checkpoint.saved_at_us = 123456;
  proto::CheckpointAgent agent;
  agent.id = 1;
  agent.name = "macro-a";
  agent.epoch = 3;
  agent.policy_history.push_back("mac:\n  dl_ue_scheduler:\n    behavior: local_rr\n");
  checkpoint.agents.push_back(agent);

  const auto bytes = checkpoint.encode();
  ASSERT_TRUE(sink.save(bytes).ok());
  auto loaded = sink.load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, bytes);
  auto decoded = proto::MasterCheckpoint::decode(*loaded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->incarnation, 7u);
  ASSERT_EQ(decoded->agents.size(), 1u);
  EXPECT_EQ(decoded->agents[0].name, "macro-a");
  EXPECT_EQ(decoded->agents[0].policy_history.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace flexran
