#include <gtest/gtest.h>

#include <vector>

#include "sim/sim_link.h"
#include "sim/simulator.h"

namespace flexran::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(300, [&] { order.push_back(3); });
  sim.at(100, [&] { order.push_back(1); });
  sim.at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, FifoForEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, RunUntilAdvancesClockWithoutOverrunning) {
  Simulator sim;
  int fired = 0;
  sim.at(1000, [&] { ++fired; });
  sim.at(2000, [&] { ++fired; });
  sim.run_until(1500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 1500);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until(2500);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int value = 0;
  sim.at(10, [&] {
    sim.after(5, [&] { value = 42; });
  });
  sim.run();
  EXPECT_EQ(value, 42);
  EXPECT_EQ(sim.now(), 15);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  TimeUs fired_at = -1;
  sim.at(100, [&] {
    sim.at(50, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(TtiTicker, TicksEveryMillisecond) {
  Simulator sim;
  TtiTicker ticker(sim);
  std::vector<std::int64_t> ttis;
  ticker.subscribe([&](std::int64_t tti) { ttis.push_back(tti); });
  ticker.start();
  sim.run_until(5 * kTtiUs + 1);
  ASSERT_EQ(ttis.size(), 5u);
  EXPECT_EQ(ttis.front(), 1);
  EXPECT_EQ(ttis.back(), 5);
}

TEST(TtiTicker, PriorityOrdersSubscribersWithinTick) {
  Simulator sim;
  TtiTicker ticker(sim);
  std::vector<int> order;
  ticker.subscribe([&](std::int64_t) { order.push_back(2); }, 20);
  ticker.subscribe([&](std::int64_t) { order.push_back(1); }, 10);
  ticker.subscribe([&](std::int64_t) { order.push_back(3); }, 30);
  ticker.start();
  sim.run_until(kTtiUs);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TtiTicker, DoubleStartDoesNotDoubleTick) {
  Simulator sim;
  TtiTicker ticker(sim);
  int ticks = 0;
  ticker.subscribe([&](std::int64_t) { ++ticks; });
  ticker.start();
  ticker.start();  // idempotent
  sim.run_until(3 * kTtiUs);
  EXPECT_EQ(ticks, 3);
}

TEST(TtiTicker, StopCeasesTicks) {
  Simulator sim;
  TtiTicker ticker(sim);
  int ticks = 0;
  ticker.subscribe([&](std::int64_t) {
    if (++ticks == 3) ticker.stop();
  });
  ticker.start();
  sim.run_until(100 * kTtiUs);
  EXPECT_EQ(ticks, 3);
}

// ----------------------------------------------------------------- Links --

TEST(SimLink, DeliversAfterConfiguredDelay) {
  Simulator sim;
  SimLink link(sim, {.delay = from_ms(15)});
  TimeUs delivered_at = -1;
  link.set_deliver([&](std::vector<std::uint8_t> data) {
    EXPECT_EQ(data.size(), 3u);
    delivered_at = sim.now();
  });
  sim.at(1000, [&] { link.send({1, 2, 3}); });
  sim.run();
  EXPECT_EQ(delivered_at, 1000 + from_ms(15));
}

TEST(SimLink, RateLimitSerializesBackToBack) {
  Simulator sim;
  // 8000 bits/s -> a 100-byte packet takes 100 ms to serialize.
  SimLink link(sim, {.delay = 0, .rate_bps = 8000});
  std::vector<TimeUs> deliveries;
  link.set_deliver([&](std::vector<std::uint8_t>) { deliveries.push_back(sim.now()); });
  link.send(std::vector<std::uint8_t>(100));
  link.send(std::vector<std::uint8_t>(100));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], from_ms(100));
  EXPECT_EQ(deliveries[1], from_ms(200));
}

TEST(SimLink, JitterNeverReorders) {
  Simulator sim;
  SimLink link(sim, {.delay = from_ms(5), .jitter = from_ms(10), .seed = 3});
  std::vector<int> received;
  link.set_deliver([&](std::vector<std::uint8_t> data) { received.push_back(data[0]); });
  for (int i = 0; i < 50; ++i) {
    sim.at(i * 100, [&link, i] { link.send({static_cast<std::uint8_t>(i)}); });
  }
  sim.run();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(SimLink, LossDelaysButStillDelivers) {
  Simulator sim;
  SimLink link(sim, {.delay = from_ms(10), .loss = 0.5, .seed = 17});
  int received = 0;
  link.set_deliver([&](std::vector<std::uint8_t>) { ++received; });
  for (int i = 0; i < 100; ++i) {
    sim.at(i * from_ms(50), [&link] { link.send({0}); });
  }
  sim.run();
  EXPECT_EQ(received, 100);
  EXPECT_GT(link.packets_retransmitted(), 20u);
  EXPECT_LT(link.packets_retransmitted(), 80u);
}

TEST(SimLink, RuntimeDelayChangeAppliesToNewPackets) {
  Simulator sim;
  SimLink link(sim, {.delay = from_ms(1)});
  std::vector<TimeUs> deliveries;
  link.set_deliver([&](std::vector<std::uint8_t>) { deliveries.push_back(sim.now()); });
  link.send({0});
  sim.at(from_ms(2), [&] {
    link.set_delay(from_ms(30));
    link.send({1});
  });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], from_ms(1));
  EXPECT_EQ(deliveries[1], from_ms(32));
}

TEST(SimLink, CountsTraffic) {
  Simulator sim;
  SimLink link(sim, {});
  link.set_deliver([](std::vector<std::uint8_t>) {});
  link.send(std::vector<std::uint8_t>(10));
  link.send(std::vector<std::uint8_t>(20));
  sim.run();
  EXPECT_EQ(link.packets_sent(), 2u);
  EXPECT_EQ(link.bytes_sent(), 30u);
}

// ----------------------------------------------------- partition semantics --

TEST(SimLink, PartitionDropsOutright) {
  Simulator sim;
  SimLink link(sim, {.delay = from_ms(5)});
  int received = 0;
  link.set_deliver([&](std::vector<std::uint8_t>) { ++received; });
  link.set_down(true);
  EXPECT_TRUE(link.down());
  link.send({1});
  link.send({2});
  sim.run();
  // Dropped at send time: no delivery, no retransmission, not counted as
  // sent traffic.
  EXPECT_EQ(received, 0);
  EXPECT_EQ(link.packets_dropped(), 2u);
  EXPECT_EQ(link.packets_retransmitted(), 0u);
  EXPECT_EQ(link.packets_sent(), 0u);
  EXPECT_EQ(link.bytes_sent(), 0u);
}

TEST(SimLink, CountersAccumulateAcrossDownUpToggles) {
  Simulator sim;
  SimLink link(sim, {.delay = from_ms(1)});
  std::vector<int> received;
  link.set_deliver([&](std::vector<std::uint8_t> data) { received.push_back(data[0]); });

  sim.at(0, [&] { link.send({0}); });
  sim.at(from_ms(10), [&] {
    link.set_down(true);
    link.send({1});  // dropped
  });
  sim.at(from_ms(20), [&] {
    link.set_down(false);
    link.send({2});
  });
  sim.at(from_ms(30), [&] {
    link.set_down(true);
    link.send({3});  // dropped
    link.send({4});  // dropped
  });
  sim.at(from_ms(40), [&] {
    link.set_down(false);
    link.send({5});
  });
  sim.run();
  EXPECT_EQ(received, (std::vector<int>{0, 2, 5}));
  EXPECT_EQ(link.packets_dropped(), 3u);
  EXPECT_EQ(link.packets_sent(), 3u);
}

TEST(SimLink, InFlightPacketSurvivesPartitionStart) {
  Simulator sim;
  SimLink link(sim, {.delay = from_ms(10)});
  int received = 0;
  link.set_deliver([&](std::vector<std::uint8_t>) { ++received; });
  // The packet is on the wire when the partition starts: it was already
  // past the failure point and still arrives (like a packet beyond the cut
  // in a real network).
  sim.at(0, [&] { link.send({1}); });
  sim.at(from_ms(1), [&] { link.set_down(true); });
  sim.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(link.packets_dropped(), 0u);
}

TEST(SimLink, JitterAndLossTogetherPreserveFifoOrder) {
  Simulator sim;
  // Retransmission pushes a lost packet a full RTT back while jitter
  // scatters its neighbors; FIFO delivery must still hold.
  SimLink link(sim, {.delay = from_ms(5), .jitter = from_ms(4), .loss = 0.3, .seed = 99});
  std::vector<int> received;
  link.set_deliver([&](std::vector<std::uint8_t> data) { received.push_back(data[0]); });
  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    sim.at(i * from_ms(2), [&link, i] { link.send({static_cast<std::uint8_t>(i % 256)}); });
  }
  sim.run();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i % 256) << "reordered at " << i;
  }
  EXPECT_GT(link.packets_retransmitted(), 0u);
  EXPECT_EQ(link.packets_dropped(), 0u);
}

TEST(SimLink, LossDuringPartitionWindowDoesNotRetransmit) {
  Simulator sim;
  SimLink link(sim, {.delay = from_ms(5), .loss = 0.9, .seed = 7});
  int received = 0;
  link.set_deliver([&](std::vector<std::uint8_t>) { ++received; });
  link.set_down(true);
  for (int i = 0; i < 50; ++i) link.send({0});
  link.set_down(false);
  sim.run();
  // While the path is gone there is no TCP-style recovery: packets are
  // dropped before the loss model ever sees them.
  EXPECT_EQ(received, 0);
  EXPECT_EQ(link.packets_dropped(), 50u);
  EXPECT_EQ(link.packets_retransmitted(), 0u);
}

}  // namespace
}  // namespace flexran::sim
