// Two-tier sharded control plane (docs/sharded_control.md): stable-hash
// agent placement with explicit overrides, command routing to the owning
// shard, the versioned composite snapshot for cross-shard applications,
// per-shard checkpoint and metric identity, and the isolation property --
// one shard's crash leaves the other shards' control loops running.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "apps/mobility_manager.h"
#include "controller/checkpoint_sink.h"
#include "controller/coordinator.h"
#include "net/sim_transport.h"
#include "phy/mobility.h"
#include "scenario/fault_injector.h"
#include "scenario/testbed.h"
#include "verify/invariants.h"

namespace flexran {
namespace {

using ctrl::Coordinator;
using ctrl::SessionState;
using scenario::Testbed;

scenario::EnbSpec spec(lte::EnbId id, std::optional<std::size_t> shard = std::nullopt) {
  scenario::EnbSpec s;
  s.enb.enb_id = id;
  s.enb.cells[0].cell_id = id;
  s.agent.name = "enb-" + std::to_string(id);
  s.shard = shard;
  return s;
}

stack::UeProfile cqi_ue(int cqi, std::int64_t attach_after = 1) {
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  profile.attach_after_ttis = attach_after;
  return profile;
}

// ------------------------------------------------------------- assignment --

TEST(ShardAssignment, HashIsDeterministicInRangeAndSpreads) {
  std::set<std::size_t> hit;
  for (std::uint64_t key = 1; key <= 64; ++key) {
    const auto shard = Coordinator::assign_shard(key, 4);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, Coordinator::assign_shard(key, 4)) << "placement must be stable";
    hit.insert(shard);
  }
  // FNV-1a over 64 sequential keys must not collapse onto one shard.
  EXPECT_EQ(hit.size(), 4u);
  // Single shard is always shard 0.
  EXPECT_EQ(Coordinator::assign_shard(12345, 1), 0u);
}

TEST(ShardAssignment, HashPlacementAndExplicitPin) {
  Testbed testbed({}, 4);
  auto& hashed = testbed.add_enb(spec(7));
  auto& pinned = testbed.add_enb(spec(8, 2));

  auto& coordinator = testbed.coordinator();
  ASSERT_EQ(coordinator.shard_count(), 4u);
  EXPECT_EQ(coordinator.shard_of(hashed.agent_id), Coordinator::assign_shard(7, 4));
  EXPECT_EQ(coordinator.shard_of(pinned.agent_id), 2u);
  // Agent ids are allocated globally: unique across shards.
  EXPECT_NE(hashed.agent_id, pinned.agent_id);
  EXPECT_EQ(coordinator.agent_count(), 2u);
}

// ---------------------------------------------------------------- routing --

TEST(ShardRouting, CommandsReachTheOwningShardOnly) {
  Testbed testbed(scenario::per_tti_master_config(), 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  auto& enb1 = testbed.add_enb(spec(2, 1));
  testbed.run_ttis(50);  // sessions up, configs fetched

  auto& coordinator = testbed.coordinator();
  // Each shard's RIB holds exactly its own agent.
  EXPECT_NE(coordinator.shard(0).rib().find_agent(enb0.agent_id), nullptr);
  EXPECT_EQ(coordinator.shard(0).rib().find_agent(enb1.agent_id), nullptr);
  EXPECT_NE(coordinator.shard(1).rib().find_agent(enb1.agent_id), nullptr);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb0.agent_id), nullptr);

  // A command sent through the Coordinator lands on the owning shard's
  // transport: shard 1's tx accounting moves, shard 0's stays untouched.
  const auto tx0_before = coordinator.shard(0).tx_accounting(enb0.agent_id).total_messages();
  proto::DrxConfig drx;
  drx.rnti = 70;
  drx.cycle_ttis = 40;
  ASSERT_TRUE(coordinator.send_drx_config(enb1.agent_id, drx).ok());
  testbed.run_ttis(10);
  coordinator.quiesce();
  EXPECT_GT(coordinator.shard(1).tx_accounting(enb1.agent_id).total_messages(), 0u);
  EXPECT_EQ(coordinator.shard(1).tx_accounting(enb0.agent_id).total_messages(), 0u);
  EXPECT_EQ(coordinator.shard(0).tx_accounting(enb0.agent_id).total_messages(), tx0_before);
  // The routed per-agent accessor agrees with the owning shard's view.
  EXPECT_EQ(coordinator.tx_accounting(enb1.agent_id).total_messages(),
            coordinator.shard(1).tx_accounting(enb1.agent_id).total_messages());
}

TEST(ShardRouting, UnknownAgentCommandsAreRejected) {
  Testbed testbed({}, 2);
  testbed.add_enb(spec(1, 0));

  auto& coordinator = testbed.coordinator();
  proto::HandoverCommand handover;
  handover.rnti = 70;
  const auto status = coordinator.send_handover(999, handover);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Error::Code::not_found);
  EXPECT_NE(status.error().message.find("not assigned"), std::string::npos)
      << status.error().message;
  proto::StatsRequest request;
  EXPECT_FALSE(coordinator.request_stats(999, request).ok());
  EXPECT_FALSE(coordinator.send_policy(999, "mac: {}\n").ok());
  EXPECT_FALSE(coordinator.shard_of(999).has_value());
  EXPECT_EQ(coordinator.find_agent(999), nullptr);
}

// ------------------------------------------------------ composite snapshot --

TEST(CompositeSnapshot, UnionsShardsAndVersionIsSumOfShardVersions) {
  Testbed testbed(scenario::per_tti_master_config(), 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  auto& enb1 = testbed.add_enb(spec(2, 1));
  testbed.run_ttis(50);

  auto& coordinator = testbed.coordinator();
  const auto composite = coordinator.rib_snapshot();
  EXPECT_NE(composite->find_agent(enb0.agent_id), nullptr);
  EXPECT_NE(composite->find_agent(enb1.agent_id), nullptr);
  EXPECT_EQ(composite->agents().size(), 2u);
  EXPECT_EQ(composite->version(), coordinator.shard(0).rib_snapshot()->version() +
                                      coordinator.shard(1).rib_snapshot()->version());
  // Per-shard apps keep their shard-local view: one agent each.
  EXPECT_EQ(coordinator.shard(0).rib_snapshot()->agents().size(), 1u);
  EXPECT_EQ(coordinator.shard(1).rib_snapshot()->agents().size(), 1u);
}

TEST(CompositeSnapshot, CachedUntilAShardPublishesANewVersion) {
  sim::Simulator sim;
  ctrl::CoordinatorConfig config;
  config.shards = 3;
  Coordinator coordinator(sim, config);

  const auto first = coordinator.rib_snapshot();
  const auto second = coordinator.rib_snapshot();
  EXPECT_EQ(first.get(), second.get()) << "idle fleet must reuse the cached composite";
  EXPECT_EQ(coordinator.composites_built(), 1u);
}

// ------------------------------------------------------ cross-shard mobility --

TEST(ShardedMobility, GlobalMobilityManagerCommandsCrossShardHandover) {
  // The serving and the target cell live on DIFFERENT shards; the mobility
  // manager runs as a global app on the composite view, so it sees both
  // cells and its handover command is routed to the serving shard.
  Testbed testbed(scenario::per_tti_master_config(), 2);
  auto s1 = spec(1, 0);
  s1.use_radio_env = true;
  auto s2 = spec(2, 1);
  s2.use_radio_env = true;
  testbed.add_enb(s1);
  testbed.add_enb(s2);
  testbed.enable_x2();

  apps::MobilityManagerConfig config;
  config.hysteresis_db = 3.0;
  config.evaluations_to_trigger = 3;
  config.period_cycles = 20;
  auto* app = static_cast<apps::MobilityManagerApp*>(
      testbed.coordinator().add_app(std::make_unique<apps::MobilityManagerApp>(config)));

  auto track = std::make_shared<phy::MobilityTrack>(
      std::vector<phy::CellSite>{{1, phy::kMacroTxPowerDbm, 0.0, 0.0},
                                 {2, phy::kMacroTxPowerDbm, 1.0, 0.0}},
      std::vector<phy::MobilityTrack::Waypoint>{{0, 0.3, 0.0},
                                                {sim::from_seconds(6), 0.8, 0.0}});
  stack::UeProfile profile;
  profile.mobility = track;
  profile.attach_after_ttis = 10;
  const auto ue_id = testbed.add_ue(0, std::move(profile));

  testbed.run_seconds(7.0);
  EXPECT_GE(app->handovers_commanded(), 1u);
  auto location = testbed.locate_ue(ue_id);
  ASSERT_TRUE(location.has_value());
  EXPECT_EQ(location->enb_index, 1u) << "UE must end up at the cell owned by the other shard";
}

// -------------------------------------------------------------- isolation --

TEST(ShardIsolation, OneShardCrashLeavesOtherShardsRunning) {
  auto config = scenario::per_tti_master_config();
  config.recovery.enabled = true;
  config.agent_timeout_us = sim::from_ms(50.0);
  config.agent_disconnect_timeout_us = sim::from_ms(200.0);
  Testbed testbed(config, 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  auto& enb1 = testbed.add_enb(spec(2, 1));
  testbed.add_ue(0, cqi_ue(15));
  testbed.add_ue(1, cqi_ue(15));
  testbed.run_seconds(0.5);

  auto& coordinator = testbed.coordinator();
  ASSERT_EQ(coordinator.shard(0).rib().find_agent(enb0.agent_id)->state, SessionState::up);
  ASSERT_EQ(coordinator.shard(1).rib().find_agent(enb1.agent_id)->state, SessionState::up);

  // Crash shard 0 for 300 ms through the chaos harness. Shard 1's agent
  // links must stay untouched.
  scenario::FaultInjector injector(testbed);
  scenario::FaultEvent crash;
  crash.at_s = 0.6;
  crash.kind = scenario::FaultKind::master_crash;
  crash.shard = 0;
  crash.duration_s = 0.3;
  injector.schedule(crash);

  const auto shard1_cycles_before = coordinator.shard(1).cycles_run();
  const auto shard1_updates_before = coordinator.shard(1).updates_applied();
  testbed.run_seconds(0.5);  // t = 1.0s: inside + just past the dead window

  // The crashed shard restarted; its peer never stopped cycling or
  // applying RIB updates, and its agent never left `up`.
  EXPECT_EQ(coordinator.shard(0).master_restarts(), 1u);
  EXPECT_EQ(coordinator.shard(1).master_restarts(), 0u);
  EXPECT_GT(coordinator.shard(1).cycles_run(), shard1_cycles_before + 400);
  EXPECT_GT(coordinator.shard(1).updates_applied(), shard1_updates_before);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb1.agent_id)->state, SessionState::up);

  testbed.run_seconds(1.0);  // let shard 0's fleet re-sync
  EXPECT_FALSE(coordinator.any_recovering());
  EXPECT_EQ(coordinator.shard(0).rib().find_agent(enb0.agent_id)->state, SessionState::up);
  EXPECT_EQ(coordinator.master_restarts(), 1u);
}

// ------------------------------------------------------------- checkpoints --

TEST(ShardedCheckpoints, ShardPathsAreDistinctUnderOneDirectory) {
  EXPECT_EQ(ctrl::FileCheckpointSink::shard_path("ckpt", 0), "ckpt/shard-0.ckpt");
  EXPECT_EQ(ctrl::FileCheckpointSink::shard_path("ckpt/", 3), "ckpt/shard-3.ckpt");
  EXPECT_NE(ctrl::FileCheckpointSink::shard_path("ckpt", 1),
            ctrl::FileCheckpointSink::shard_path("ckpt", 2));
}

TEST(ShardedCheckpoints, SinkFactoryGivesEveryShardItsOwnSink) {
  auto config = scenario::per_tti_master_config();
  config.recovery.enabled = true;
  config.recovery.checkpoint_period_us = sim::from_ms(100.0);

  std::vector<std::shared_ptr<ctrl::MemoryCheckpointSink>> sinks(2);
  // Build the testbed's coordinator by hand so the factory can be wired.
  sim::Simulator sim;
  ctrl::CoordinatorConfig coordinator_config;
  coordinator_config.shards = 2;
  coordinator_config.shard = config;
  coordinator_config.checkpoint_sink_factory = [&sinks](std::size_t shard) {
    sinks[shard] = std::make_shared<ctrl::MemoryCheckpointSink>();
    return sinks[shard];
  };
  Coordinator coordinator(sim, coordinator_config);

  auto link0 = net::make_sim_transport_pair(sim);
  auto link1 = net::make_sim_transport_pair(sim);
  const auto id0 = coordinator.add_agent(*link0.a, 1);
  const auto id1 = coordinator.add_agent(*link1.a, 2);
  EXPECT_NE(id0, id1);
  ASSERT_TRUE(coordinator.shard(0).save_checkpoint().ok());
  ASSERT_TRUE(coordinator.shard(1).save_checkpoint().ok());
  ASSERT_NE(sinks[0], nullptr);
  ASSERT_NE(sinks[1], nullptr);
  EXPECT_NE(sinks[0], sinks[1]);
  EXPECT_EQ(sinks[0]->saves(), 1u);
  EXPECT_EQ(sinks[1]->saves(), 1u);
}

// ---------------------------------------------- failover (shard death) --

ctrl::MasterConfig failover_config(bool warm_checkpoints) {
  auto config = scenario::per_tti_master_config();
  config.recovery.enabled = true;
  config.recovery.resync_tokens_per_s = 50.0;
  config.recovery.resync_burst = 2.0;
  config.recovery.resync_retry_after_ms = 20.0;
  config.agent_timeout_us = sim::from_ms(50.0);
  config.agent_disconnect_timeout_us = sim::from_ms(200.0);
  if (warm_checkpoints) {
    // The Testbed clones this into one MemoryCheckpointSink per shard.
    config.recovery.checkpoint_sink = std::make_shared<ctrl::MemoryCheckpointSink>();
    config.recovery.checkpoint_period_us = sim::from_ms(100.0);
  }
  return config;
}

TEST(ShardFailover, KillShardWarmAdoptionResumesService) {
  Testbed testbed(failover_config(/*warm_checkpoints=*/true), 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  auto& enb1 = testbed.add_enb(spec(2, 0));
  auto& enb2 = testbed.add_enb(spec(3, 1));
  testbed.add_ue(0, cqi_ue(15));
  testbed.run_seconds(0.5);  // sessions up, several checkpoints saved

  auto& coordinator = testbed.coordinator();
  ASSERT_EQ(coordinator.shard(0).rib().find_agent(enb0.agent_id)->state, SessionState::up);
  ASSERT_GT(coordinator.shard(0).checkpoints_saved(), 0u);

  const auto adopted = coordinator.kill_shard(0);
  EXPECT_EQ(adopted, 2u);
  EXPECT_EQ(coordinator.shard_health(0), Coordinator::ShardHealth::failed);
  EXPECT_EQ(coordinator.shards_failed(), 1u);
  EXPECT_EQ(coordinator.agents_adopted(), 2u);
  // The dead shard's checkpoint covered both agents: every adoption is a
  // warm handoff seeding the adopter for a delta re-sync.
  EXPECT_EQ(coordinator.warm_adoptions(), 2u);
  EXPECT_EQ(coordinator.cold_adoptions(), 0u);
  EXPECT_EQ(coordinator.agents_orphaned(), 0u);
  EXPECT_EQ(coordinator.shard_of(enb0.agent_id), 1u);
  EXPECT_EQ(coordinator.shard_of(enb1.agent_id), 1u);
  // Assignment and composite move atomically: the adoptees are visible
  // under the survivor before any further cycle runs.
  const auto composite = coordinator.rib_snapshot();
  EXPECT_NE(composite->find_agent(enb0.agent_id), nullptr);
  EXPECT_NE(composite->find_agent(enb1.agent_id), nullptr);
  EXPECT_EQ(composite->agents().size(), 3u);

  testbed.run_seconds(1.5);  // paced delta re-sync on the adopter
  auto& survivor = coordinator.shard(1);
  EXPECT_EQ(survivor.rib().find_agent(enb0.agent_id)->state, SessionState::up);
  EXPECT_EQ(survivor.rib().find_agent(enb1.agent_id)->state, SessionState::up);
  EXPECT_EQ(survivor.rib().find_agent(enb2.agent_id)->state, SessionState::up);
  // Blast radius: adoption is not a restart -- the survivor's own agents
  // never flapped and its restart counter never moved.
  EXPECT_EQ(survivor.master_restarts(), 0u);
  EXPECT_FALSE(coordinator.any_recovering());
  EXPECT_EQ(coordinator.failover_pending(), 0u);
  EXPECT_GT(coordinator.last_failover_duration(), 0);

  // Commands flow to the adoptees through the normal routed surface.
  proto::DrxConfig drx;
  drx.rnti = 70;
  drx.cycle_ttis = 40;
  EXPECT_TRUE(coordinator.send_drx_config(enb0.agent_id, drx).ok());

  // Killing an already-failed shard is a no-op.
  EXPECT_EQ(coordinator.kill_shard(0), 0u);
  EXPECT_EQ(coordinator.shards_failed(), 1u);
}

TEST(ShardFailover, ColdAdoptionWithoutCheckpointStillRecovers) {
  Testbed testbed(failover_config(/*warm_checkpoints=*/false), 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  auto& enb1 = testbed.add_enb(spec(2, 1));
  testbed.run_seconds(0.4);

  auto& coordinator = testbed.coordinator();
  EXPECT_EQ(coordinator.kill_shard(0), 1u);
  // No checkpoint sink: the adoption is cold -- full config re-fetch.
  EXPECT_EQ(coordinator.cold_adoptions(), 1u);
  EXPECT_EQ(coordinator.warm_adoptions(), 0u);

  testbed.run_seconds(1.5);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb0.agent_id)->state, SessionState::up);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb1.agent_id)->state, SessionState::up);
  EXPECT_EQ(coordinator.shard(1).master_restarts(), 0u);
  EXPECT_EQ(coordinator.failover_pending(), 0u);
}

TEST(ShardFailover, ThrowingShardIsFailedAndItsFleetAdopted) {
  Testbed testbed(failover_config(/*warm_checkpoints=*/false), 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  testbed.add_enb(spec(2, 1));
  testbed.run_seconds(0.4);

  auto& coordinator = testbed.coordinator();
  coordinator.shard(0).set_cycle_fault(ctrl::ShardCore::CycleFault::throwing);
  testbed.run_ttis(2);  // the first coordinator cycle catches the throw
  EXPECT_EQ(coordinator.shard_health(0), Coordinator::ShardHealth::failed);
  EXPECT_EQ(coordinator.shard_of(enb0.agent_id), 1u);

  testbed.run_seconds(1.5);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb0.agent_id)->state, SessionState::up);
  EXPECT_EQ(coordinator.shard(1).master_restarts(), 0u);
}

TEST(ShardFailover, StallWatchdogFailsASilentShard) {
  Testbed testbed(failover_config(/*warm_checkpoints=*/false), 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  testbed.add_enb(spec(2, 1));
  testbed.coordinator().set_shard_stall_cycles(50);
  testbed.run_seconds(0.4);

  auto& coordinator = testbed.coordinator();
  coordinator.shard(0).set_cycle_fault(ctrl::ShardCore::CycleFault::stalled);
  testbed.run_ttis(40);  // below the threshold: suspected, not yet failed
  EXPECT_EQ(coordinator.shard_health(0), Coordinator::ShardHealth::alive);
  testbed.run_ttis(20);  // crosses 50 consecutive silent cycles
  EXPECT_EQ(coordinator.shard_health(0), Coordinator::ShardHealth::failed);
  EXPECT_EQ(coordinator.shard_of(enb0.agent_id), 1u);
  // The orphan window is measured from stall onset, not from the verdict.
  EXPECT_GT(coordinator.last_orphan_window(), 0);

  testbed.run_seconds(1.5);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb0.agent_id)->state, SessionState::up);
}

TEST(ShardFailover, NewAgentsNeverLandOnAFailedShard) {
  Testbed testbed(failover_config(/*warm_checkpoints=*/false), 2);
  testbed.add_enb(spec(1, 0));
  testbed.add_enb(spec(2, 1));
  testbed.run_seconds(0.3);

  auto& coordinator = testbed.coordinator();
  coordinator.kill_shard(0);
  // An explicit pin to the dead shard is overridden by the re-hash.
  auto& late = testbed.add_enb(spec(9, 0));
  EXPECT_EQ(coordinator.shard_of(late.agent_id), 1u);
}

// ------------------------------------------------- drain (planned migration) --

TEST(ShardDrain, PacedMigrationEndsDrained) {
  Testbed testbed(failover_config(/*warm_checkpoints=*/true), 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  auto& enb1 = testbed.add_enb(spec(2, 0));
  auto& enb2 = testbed.add_enb(spec(3, 1));
  testbed.run_seconds(0.5);

  auto& coordinator = testbed.coordinator();
  ASSERT_TRUE(coordinator.drain_shard(0).ok());
  EXPECT_EQ(coordinator.shard_health(0), Coordinator::ShardHealth::draining);
  // One drain at a time.
  EXPECT_FALSE(coordinator.drain_shard(1).ok());

  testbed.run_ttis(1);
  EXPECT_EQ(coordinator.agents_drained(), 1u) << "one agent per coordinator cycle";
  testbed.run_ttis(3);
  EXPECT_EQ(coordinator.agents_drained(), 2u);
  EXPECT_EQ(coordinator.shard_health(0), Coordinator::ShardHealth::drained);
  EXPECT_EQ(coordinator.shard_of(enb0.agent_id), 1u);
  EXPECT_EQ(coordinator.shard_of(enb1.agent_id), 1u);
  // A live export accompanied every move: planned migration is always warm.
  EXPECT_EQ(coordinator.warm_adoptions(), 2u);
  EXPECT_EQ(coordinator.shards_failed(), 0u);

  testbed.run_seconds(1.5);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb0.agent_id)->state, SessionState::up);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb1.agent_id)->state, SessionState::up);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb2.agent_id)->state, SessionState::up);
  EXPECT_EQ(coordinator.shard(1).master_restarts(), 0u);
  EXPECT_EQ(coordinator.failover_pending(), 0u);

  // A drained shard cannot be drained again (and is skipped by placement).
  EXPECT_FALSE(coordinator.drain_shard(0).ok());
}

TEST(ShardDrain, RefusedWithoutASurvivor) {
  Testbed testbed(failover_config(/*warm_checkpoints=*/false), 2);
  testbed.add_enb(spec(1, 0));
  testbed.add_enb(spec(2, 1));
  testbed.run_seconds(0.3);

  auto& coordinator = testbed.coordinator();
  coordinator.kill_shard(1);
  const auto status = coordinator.drain_shard(0);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Error::Code::conflict);
}

// -------------------------------------------- composite cache invalidation --

TEST(CompositeSnapshot, RemoveAgentInvalidatesTheCachedComposite) {
  Testbed testbed(scenario::per_tti_master_config(), 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  auto& enb1 = testbed.add_enb(spec(2, 1));
  testbed.run_ttis(50);

  auto& coordinator = testbed.coordinator();
  const auto before = coordinator.rib_snapshot();
  ASSERT_NE(before->find_agent(enb0.agent_id), nullptr);

  // Remove between cycles: the cached union must not keep serving the
  // removed agent until the owning shard happens to publish again.
  coordinator.remove_agent(enb0.agent_id);
  const auto after = coordinator.rib_snapshot();
  EXPECT_EQ(after->find_agent(enb0.agent_id), nullptr)
      << "stale composite served after remove_agent";
  EXPECT_NE(after->find_agent(enb1.agent_id), nullptr);
  EXPECT_EQ(coordinator.agent_count(), 1u);
}

// ------------------------------------------- wrong-shard checkpoint gate --

TEST(ShardedCheckpoints, WrongShardCheckpointIsRejectedOnRestore) {
  // Misconfiguration the shard stamp exists to catch: two shards sharing
  // one sink. Shard 1 must refuse to resurrect shard 0's agent set.
  auto shared_sink = std::make_shared<ctrl::MemoryCheckpointSink>();
  sim::Simulator sim;
  ctrl::CoordinatorConfig coordinator_config;
  coordinator_config.shards = 2;
  coordinator_config.shard = scenario::per_tti_master_config();
  coordinator_config.shard.recovery.enabled = true;
  coordinator_config.checkpoint_sink_factory = [&shared_sink](std::size_t) {
    return shared_sink;
  };
  Coordinator coordinator(sim, coordinator_config);

  auto link0 = net::make_sim_transport_pair(sim);
  auto link1 = net::make_sim_transport_pair(sim);
  coordinator.add_agent(*link0.a, 1);
  coordinator.add_agent(*link1.a, 2);
  ASSERT_TRUE(coordinator.shard(0).save_checkpoint().ok());

  coordinator.shard(1).restart();
  EXPECT_EQ(coordinator.shard(1).checkpoints_rejected(), 1u);
  EXPECT_FALSE(coordinator.shard(1).checkpoint_loaded());

  // The shard that wrote it restores it fine.
  coordinator.shard(0).restart();
  EXPECT_EQ(coordinator.shard(0).checkpoints_rejected(), 0u);
  EXPECT_TRUE(coordinator.shard(0).checkpoint_loaded());
}

// ----------------------------------------------------------- observability --

TEST(ShardedObs, SharedRegistryKeepsPerShardMetricIdentities) {
  auto config = scenario::per_tti_master_config();
  config.obs.enabled = true;
  Testbed testbed(config, 2);
  testbed.add_enb(spec(1, 0));
  testbed.add_enb(spec(2, 1));
  testbed.run_ttis(50);

  // One registry for the whole process; every shard's probes carry its
  // `shard` label, so identities never collide.
  const auto text = testbed.coordinator().metrics().prometheus_text();
  EXPECT_NE(text.find("cycles_run{shard=\"0\"}"), std::string::npos);
  EXPECT_NE(text.find("cycles_run{shard=\"1\"}"), std::string::npos);
  EXPECT_NE(text.find("updates_applied{shard=\"0\"}"), std::string::npos);
  EXPECT_NE(text.find("updates_applied{shard=\"1\"}"), std::string::npos);

  // A single-shard testbed keeps the unlabeled (seed) names.
  auto single_config = scenario::per_tti_master_config();
  single_config.obs.enabled = true;
  Testbed single(single_config);
  single.add_enb(spec(1));
  single.run_ttis(10);
  const auto single_text = single.coordinator().metrics().prometheus_text();
  EXPECT_NE(single_text.find("cycles_run "), std::string::npos);
  EXPECT_EQ(single_text.find("cycles_run{"), std::string::npos);
}

// ----------------------------------------- failover edge cases (monitored) --

// Renders the monitor's findings so a regression fails with the actual
// violated invariants, not just a counter mismatch.
std::string violations_text(const verify::InvariantMonitor& monitor) {
  std::string text;
  for (const auto& line : monitor.violation_summaries()) text += line + "\n";
  return text;
}

// A shard dies mid-drain: the planned migration is abandoned, the drain
// queue cleared, and every agent still on the victim is re-homed through
// the ordinary failover path -- without the monitor seeing a double owner
// or an unrecoverable orphan at any cycle.
TEST(ShardFailover, KillDuringActiveDrainAdoptsTheRest) {
  Testbed testbed(failover_config(/*warm_checkpoints=*/true), 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  auto& enb1 = testbed.add_enb(spec(2, 0));
  auto& enb2 = testbed.add_enb(spec(3, 1));
  verify::InvariantMonitor monitor(testbed.coordinator(), verify::Mode::log);
  monitor.install();
  testbed.run_seconds(0.5);

  auto& coordinator = testbed.coordinator();
  ASSERT_TRUE(coordinator.drain_shard(0).ok());
  testbed.run_ttis(1);
  ASSERT_EQ(coordinator.agents_drained(), 1u);  // mid-drain: one moved, one queued

  coordinator.kill_shard(0);
  EXPECT_EQ(coordinator.shard_health(0), Coordinator::ShardHealth::failed);
  // The queued remainder went through adoption, not the drain (every
  // re-home -- drained or failed-over -- counts in agents_adopted).
  EXPECT_EQ(coordinator.agents_drained(), 1u);
  EXPECT_EQ(coordinator.agents_adopted(), 2u);
  EXPECT_EQ(coordinator.agents_orphaned(), 0u);
  EXPECT_EQ(coordinator.shard_of(enb0.agent_id), 1u);
  EXPECT_EQ(coordinator.shard_of(enb1.agent_id), 1u);

  testbed.run_seconds(1.5);
  auto& survivor = coordinator.shard(1);
  EXPECT_EQ(survivor.rib().find_agent(enb0.agent_id)->state, SessionState::up);
  EXPECT_EQ(survivor.rib().find_agent(enb1.agent_id)->state, SessionState::up);
  EXPECT_EQ(survivor.rib().find_agent(enb2.agent_id)->state, SessionState::up);
  EXPECT_EQ(coordinator.failover_pending(), 0u);
  // After the abandoned drain, a fresh drain elsewhere is legal again.
  EXPECT_FALSE(coordinator.drain_shard(0).ok());  // dead shards stay refused
  EXPECT_EQ(monitor.violations_total(), 0u) << violations_text(monitor);
}

// A shard is killed while it is itself still recovering from a restart:
// its agents' epochs baseline-shift twice in quick succession (restart,
// then adoption), which is exactly the window the monitor's per-span
// epoch baselines must tolerate without false positives -- and the
// adoption must still converge.
TEST(ShardFailover, KillWhileVictimStillRecovering) {
  Testbed testbed(failover_config(/*warm_checkpoints=*/true), 2);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  auto& enb1 = testbed.add_enb(spec(2, 1));
  verify::InvariantMonitor monitor(testbed.coordinator(), verify::Mode::log);
  monitor.install();
  testbed.run_seconds(0.5);

  auto& coordinator = testbed.coordinator();
  coordinator.shard(0).restart();
  ASSERT_TRUE(coordinator.shard(0).recovering());
  testbed.run_ttis(5);  // re-sync barely started

  coordinator.kill_shard(0);
  EXPECT_EQ(coordinator.shard_health(0), Coordinator::ShardHealth::failed);
  EXPECT_EQ(coordinator.shard_of(enb0.agent_id), 1u);

  testbed.run_seconds(1.5);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb0.agent_id)->state, SessionState::up);
  EXPECT_EQ(coordinator.shard(1).rib().find_agent(enb1.agent_id)->state, SessionState::up);
  EXPECT_FALSE(coordinator.any_recovering());
  EXPECT_EQ(coordinator.failover_pending(), 0u);
  EXPECT_EQ(monitor.violations_total(), 0u) << violations_text(monitor);
}

// Two kills back to back leave a single survivor owning the whole fleet;
// the second failover adopts agents that were themselves adopted moments
// earlier (incarnation floors must keep climbing, never reset).
TEST(ShardFailover, BackToBackKillsLeaveOneSurvivor) {
  Testbed testbed(failover_config(/*warm_checkpoints=*/true), 3);
  auto& enb0 = testbed.add_enb(spec(1, 0));
  auto& enb1 = testbed.add_enb(spec(2, 1));
  auto& enb2 = testbed.add_enb(spec(3, 2));
  verify::InvariantMonitor monitor(testbed.coordinator(), verify::Mode::log);
  monitor.install();
  testbed.run_seconds(0.5);

  auto& coordinator = testbed.coordinator();
  coordinator.kill_shard(0);
  coordinator.kill_shard(1);
  EXPECT_EQ(coordinator.shards_failed(), 2u);
  EXPECT_EQ(coordinator.agents_orphaned(), 0u);
  EXPECT_EQ(coordinator.shard_of(enb0.agent_id), 2u);
  EXPECT_EQ(coordinator.shard_of(enb1.agent_id), 2u);
  EXPECT_EQ(coordinator.shard_of(enb2.agent_id), 2u);

  testbed.run_seconds(2.0);
  auto& survivor = coordinator.shard(2);
  EXPECT_EQ(survivor.rib().find_agent(enb0.agent_id)->state, SessionState::up);
  EXPECT_EQ(survivor.rib().find_agent(enb1.agent_id)->state, SessionState::up);
  EXPECT_EQ(survivor.rib().find_agent(enb2.agent_id)->state, SessionState::up);
  EXPECT_EQ(survivor.master_restarts(), 0u);
  EXPECT_EQ(coordinator.failover_pending(), 0u);
  EXPECT_EQ(monitor.violations_total(), 0u) << violations_text(monitor);
}

}  // namespace
}  // namespace flexran
