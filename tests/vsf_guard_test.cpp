// Delegated-control containment (docs/delegation_safety.md): guarded VSF
// execution -- exception/overrun/invalid-decision containment with
// same-TTI fallback, decision validation against the cell configuration,
// quarantine after consecutive failures, atomic two-phase policy apply,
// master-side last-known-good rollback, and remote-scheduler demotion.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/remote_scheduler.h"
#include "lte/tables.h"
#include "scenario/config.h"
#include "scenario/testbed.h"

namespace flexran {
namespace {

scenario::EnbSpec basic_spec(lte::EnbId id = 1, double bandwidth_mhz = 10.0) {
  scenario::EnbSpec spec;
  spec.enb.enb_id = id;
  spec.enb.cells[0].cell_id = id;
  spec.enb.cells[0].bandwidth_mhz = bandwidth_mhz;
  spec.agent.name = "guard-" + std::to_string(id);
  return spec;
}

stack::UeProfile fixed_ue(int cqi, std::int64_t attach_after = 1) {
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  profile.attach_after_ttis = attach_after;
  return profile;
}

constexpr const char* kFaultyPolicy =
    "mac:\n"
    "  dl_ue_scheduler:\n"
    "    behavior: faulty_crash\n";
constexpr const char* kGoodPolicy =
    "mac:\n"
    "  dl_ue_scheduler:\n"
    "    behavior: local_rr\n";

// ------------------------------------------------------------ RBG tables --

TEST(RbgTables, SizeFollows36213Table) {
  EXPECT_EQ(lte::rbg_size(6), 1);
  EXPECT_EQ(lte::rbg_size(10), 1);
  EXPECT_EQ(lte::rbg_size(15), 2);
  EXPECT_EQ(lte::rbg_size(25), 2);
  EXPECT_EQ(lte::rbg_size(26), 2);
  EXPECT_EQ(lte::rbg_size(27), 3);
  EXPECT_EQ(lte::rbg_size(50), 3);
  EXPECT_EQ(lte::rbg_size(63), 3);
  EXPECT_EQ(lte::rbg_size(64), 4);
  EXPECT_EQ(lte::rbg_size(75), 4);
  EXPECT_EQ(lte::rbg_size(100), 4);
}

TEST(RbgTables, CountRoundsUpAtNonDivisiblePrbCounts) {
  // Exact: 6/1, 50/3 is NOT exact (ceil(50/3) = 17), 100/4 = 25.
  EXPECT_EQ(lte::rbg_count(6), 6);
  EXPECT_EQ(lte::rbg_count(100), 25);
  // Non-divisible tiers get a short last RBG.
  EXPECT_EQ(lte::rbg_count(15), 8);   // 7 RBGs of 2 + one of 1
  EXPECT_EQ(lte::rbg_count(25), 13);  // 12 RBGs of 2 + one of 1
  EXPECT_EQ(lte::rbg_count(50), 17);  // 16 RBGs of 3 + one of 2
  EXPECT_EQ(lte::rbg_count(75), 19);  // 18 RBGs of 4 + one of 3
  EXPECT_EQ(lte::rbg_count(0), 0);
}

// ------------------------------------------------------------ validation --

TEST(VsfGuardValidation, FullBandwidthValidAtEveryTier) {
  const struct {
    double mhz;
    int prbs;
  } tiers[] = {{1.4, 6}, {3.0, 15}, {5.0, 25}, {10.0, 50}, {15.0, 75}, {20.0, 100}};
  for (const auto& tier : tiers) {
    scenario::Testbed testbed(scenario::per_tti_master_config());
    auto& enb = testbed.add_enb(basic_spec(1, tier.mhz));
    const auto rnti = testbed.add_ue(0, fixed_ue(12));
    testbed.run_ttis(50);
    ASSERT_EQ(enb.agent->api().dl_prbs(), tier.prbs);

    auto& guard = enb.agent->vsf_guard();
    lte::SchedulingDecision decision;
    decision.cell_id = enb.agent->api().cell_id();
    lte::DlDci dci;
    dci.rnti = rnti;
    dci.mcs = 10;
    dci.rbs.set_range(0, tier.prbs);
    decision.dl.push_back(dci);
    EXPECT_TRUE(guard.validate_decision(decision, enb.agent->api()).ok())
        << tier.mhz << " MHz full allocation";

    // One PRB past the cell bandwidth is invalid at every tier below the
    // bitset cap (100 PRBs cannot over-allocate representably).
    if (tier.prbs < lte::kMaxPrbs) {
      lte::SchedulingDecision over;
      over.cell_id = decision.cell_id;
      lte::DlDci bad = dci;
      bad.rbs.set(tier.prbs);
      over.dl.push_back(bad);
      EXPECT_FALSE(guard.validate_decision(over, enb.agent->api()).ok())
          << tier.mhz << " MHz PRB " << tier.prbs;
    }
  }
}

TEST(VsfGuardValidation, UnclippedLastRbgRejectedClippedAccepted) {
  // 3 MHz = 15 PRBs, RBG size 2: the last RBG nominally covers PRBs 14-15
  // but PRB 15 does not exist; a scheduler must clip it to PRB 14 alone.
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec(1, 3.0));
  const auto rnti = testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(50);
  ASSERT_EQ(lte::rbg_size(enb.agent->api().dl_prbs()), 2);

  auto& guard = enb.agent->vsf_guard();
  lte::SchedulingDecision decision;
  decision.cell_id = enb.agent->api().cell_id();
  lte::DlDci dci;
  dci.rnti = rnti;
  dci.mcs = 5;
  dci.rbs.set_range(14, 2);  // unclipped last RBG: PRBs 14 and 15
  decision.dl.push_back(dci);
  EXPECT_FALSE(guard.validate_decision(decision, enb.agent->api()).ok());

  decision.dl[0].rbs = {};
  decision.dl[0].rbs.set(14);  // clipped to the one real PRB
  EXPECT_TRUE(guard.validate_decision(decision, enb.agent->api()).ok());
}

TEST(VsfGuardValidation, RejectsOverlapUnknownRntiBadMcsAndBadCarrier) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  const auto rnti = testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(50);
  auto& guard = enb.agent->vsf_guard();
  const auto& api = enb.agent->api();

  auto base = [&] {
    lte::SchedulingDecision decision;
    decision.cell_id = api.cell_id();
    lte::DlDci dci;
    dci.rnti = rnti;
    dci.mcs = 10;
    dci.rbs.set_range(0, 10);
    decision.dl.push_back(dci);
    return decision;
  };

  EXPECT_TRUE(guard.validate_decision(base(), api).ok());

  auto overlapping = base();
  lte::DlDci second = overlapping.dl[0];
  second.rbs = {};
  second.rbs.set_range(5, 12);  // PRBs 5..16; 5..9 collide with the first grant
  overlapping.dl.push_back(second);
  EXPECT_FALSE(guard.validate_decision(overlapping, api).ok());

  auto unknown = base();
  unknown.dl[0].rnti = 0xFFF0;
  EXPECT_FALSE(guard.validate_decision(unknown, api).ok());

  auto bad_mcs = base();
  bad_mcs.dl[0].mcs = lte::kMaxMcs + 1;
  EXPECT_FALSE(guard.validate_decision(bad_mcs, api).ok());

  auto empty_grant = base();
  empty_grant.dl[0].rbs = {};
  EXPECT_FALSE(guard.validate_decision(empty_grant, api).ok());

  // Carrier 1 without a configured SCell is unschedulable.
  auto bad_carrier = base();
  bad_carrier.dl[0].carrier = 1;
  EXPECT_FALSE(guard.validate_decision(bad_carrier, api).ok());

  // UL validation: same PRB-bound rule against ul_prbs().
  lte::SchedulingDecision ul;
  ul.cell_id = api.cell_id();
  lte::UlDci grant;
  grant.rnti = rnti;
  grant.mcs = 10;
  grant.rbs.set_range(0, api.ul_prbs());
  ul.ul.push_back(grant);
  EXPECT_TRUE(guard.validate_decision(ul, api).ok());
  ul.ul[0].rbs.set(api.ul_prbs());
  EXPECT_FALSE(guard.validate_decision(ul, api).ok());
}

TEST(VsfGuardValidation, EmptyDecisionFastPathSkipsValidationWork) {
  // No UEs, no traffic: every TTI produces empty DL and UL decisions, which
  // must short-circuit before any validation bookkeeping.
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(30);
  EXPECT_EQ(enb.agent->vsf_guard().validations_run(), 0u);

  // With an attached UE and queued traffic, decisions are non-empty and
  // validation actually runs.
  const auto rnti = testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(20);
  (void)testbed.epc().downlink(rnti, 20'000);
  testbed.run_ttis(20);
  EXPECT_GT(enb.agent->vsf_guard().validations_run(), 0u);
}

// ----------------------------------------------------------- containment --

TEST(VsfGuardContainment, CrashingVsfFallsBackSameTtiAndQuarantines) {
  agent::register_faulty_vsfs();
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(50);

  ASSERT_TRUE(
      testbed.master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "faulty_crash").ok());
  ASSERT_TRUE(testbed.master().send_policy(enb.agent_id, kFaultyPolicy).ok());
  testbed.run_ttis(50);

  const auto& guard = enb.agent->vsf_guard();
  EXPECT_GE(guard.vsf_failures(), 3u);
  EXPECT_EQ(guard.quarantines(), 1u);
  // Every failed TTI produced a fallback decision in the same TTI; no TTI
  // went unscheduled.
  EXPECT_GE(guard.fallback_decisions(), 3u);
  EXPECT_EQ(guard.unscheduled_slots(), 0u);
  EXPECT_GE(guard.fallback_latency_us().count(), 3u);
  // The slot was relinked to the built-in fallback.
  EXPECT_EQ(enb.agent->mac().active_implementation(agent::MacControlModule::kDlSchedulerSlot),
            "local_rr");
  EXPECT_TRUE(
      enb.agent->vsf_cache().is_quarantined("mac", "dl_ue_scheduler", "faulty_crash"));
}

TEST(VsfGuardContainment, OverrunVsfFailsDeadlineBudget) {
  agent::register_faulty_vsfs();
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(30);

  ASSERT_TRUE(
      testbed.master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "faulty_overrun").ok());
  ASSERT_TRUE(testbed.master()
                  .send_policy(enb.agent_id,
                               "mac:\n  dl_ue_scheduler:\n    behavior: faulty_overrun\n")
                  .ok());
  testbed.run_ttis(30);

  EXPECT_GE(enb.agent->vsf_guard().vsf_failures(), 3u);
  EXPECT_EQ(enb.agent->vsf_guard().quarantines(), 1u);
  EXPECT_EQ(enb.agent->vsf_guard().unscheduled_slots(), 0u);
  EXPECT_TRUE(
      enb.agent->vsf_cache().is_quarantined("mac", "dl_ue_scheduler", "faulty_overrun"));
}

TEST(VsfGuardContainment, InvalidDecisionNeverReachesMac) {
  agent::register_faulty_vsfs();
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(50);

  ASSERT_TRUE(
      testbed.master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "faulty_invalid").ok());
  ASSERT_TRUE(testbed.master()
                  .send_policy(enb.agent_id,
                               "mac:\n  dl_ue_scheduler:\n    behavior: faulty_invalid\n")
                  .ok());
  testbed.run_ttis(50);

  EXPECT_GE(enb.agent->vsf_guard().vsf_failures(), 3u);
  EXPECT_EQ(enb.agent->vsf_guard().quarantines(), 1u);
  EXPECT_EQ(enb.agent->vsf_guard().unscheduled_slots(), 0u);
  // The bogus RNTI the faulty VSF grants must never have been scheduled:
  // it is unknown to the data plane, so any delivered bytes for it would
  // mean the invalid decision reached the MAC.
  EXPECT_EQ(testbed.metrics().total_bytes(1, 0xFFF0, lte::Direction::downlink), 0u);
}

TEST(VsfGuardContainment, QuarantinedPolicyRejectedUntilFreshUpdation) {
  agent::register_faulty_vsfs();
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(30);

  ASSERT_TRUE(
      testbed.master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "faulty_crash").ok());
  ASSERT_TRUE(testbed.master().send_policy(enb.agent_id, kFaultyPolicy).ok());
  testbed.run_ttis(30);
  ASSERT_TRUE(
      enb.agent->vsf_cache().is_quarantined("mac", "dl_ue_scheduler", "faulty_crash"));

  // Re-linking the quarantined implementation is refused on both paths.
  EXPECT_FALSE(enb.agent->mac()
                   .set_behavior(agent::MacControlModule::kDlSchedulerSlot, "faulty_crash")
                   .ok());
  EXPECT_FALSE(enb.agent->apply_policy(kFaultyPolicy).ok());
  EXPECT_EQ(enb.agent->mac().active_implementation(agent::MacControlModule::kDlSchedulerSlot),
            "local_rr");

  // A fresh VSF updation re-instantiates the implementation and clears the
  // quarantine (the paper's updation path doubles as the recovery path).
  ASSERT_TRUE(
      testbed.master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "faulty_crash").ok());
  testbed.run_ttis(10);
  EXPECT_FALSE(
      enb.agent->vsf_cache().is_quarantined("mac", "dl_ue_scheduler", "faulty_crash"));
  EXPECT_TRUE(enb.agent->apply_policy(kFaultyPolicy).ok());
}

// ------------------------------------------------------- policy atomicity --

TEST(PolicyAtomicity, MalformedDocumentsRejectedWithoutPartialApply) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(30);
  const auto active = [&] {
    return enb.agent->mac().active_implementation(agent::MacControlModule::kDlSchedulerSlot);
  };
  ASSERT_EQ(active(), "local_rr");

  // Bad nesting: the slot spec must be a map.
  EXPECT_FALSE(enb.agent->apply_policy("mac:\n  dl_ue_scheduler: local_pf\n").ok());
  // Non-scalar where a scalar is expected.
  EXPECT_FALSE(
      enb.agent->apply_policy("mac:\n  dl_ue_scheduler:\n    behavior:\n      - local_pf\n")
          .ok());
  // Unknown module and unknown VSF slot.
  EXPECT_FALSE(enb.agent->apply_policy("phy:\n  precoder:\n    behavior: local_rr\n").ok());
  EXPECT_FALSE(enb.agent->apply_policy("mac:\n  bogus_slot:\n    behavior: local_rr\n").ok());
  // Unknown implementation.
  EXPECT_FALSE(
      enb.agent->apply_policy("mac:\n  dl_ue_scheduler:\n    behavior: no_such_impl\n").ok());
  EXPECT_EQ(active(), "local_rr");
}

TEST(PolicyAtomicity, BadParameterLeavesWholeDocumentUnapplied) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(30);

  // The behavior is valid but a parameter is not: two-phase validation must
  // reject the document before the behavior swap, not after.
  EXPECT_FALSE(enb.agent
                   ->apply_policy(
                       "mac:\n"
                       "  dl_ue_scheduler:\n"
                       "    behavior: local_pf\n"
                       "    parameters:\n"
                       "      max_ues_per_tti: 0\n")
                   .ok());
  EXPECT_EQ(enb.agent->mac().active_implementation(agent::MacControlModule::kDlSchedulerSlot),
            "local_rr");

  // Unknown parameter names are validated against the pending behavior too.
  EXPECT_FALSE(enb.agent
                   ->apply_policy(
                       "mac:\n"
                       "  dl_ue_scheduler:\n"
                       "    behavior: local_pf\n"
                       "    parameters:\n"
                       "      bogus_knob: 7\n")
                   .ok());
  EXPECT_EQ(enb.agent->mac().active_implementation(agent::MacControlModule::kDlSchedulerSlot),
            "local_rr");

  // The same document with a sane parameter applies.
  EXPECT_TRUE(enb.agent
                  ->apply_policy(
                      "mac:\n"
                      "  dl_ue_scheduler:\n"
                      "    behavior: local_pf\n"
                      "    parameters:\n"
                      "      max_ues_per_tti: 4\n")
                  .ok());
  EXPECT_EQ(enb.agent->mac().active_implementation(agent::MacControlModule::kDlSchedulerSlot),
            "local_pf");
}

TEST(PolicyAtomicity, RejectedRemotePolicyReportsVerdictToMaster) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.run_ttis(30);

  ASSERT_TRUE(testbed.master()
                  .send_policy(enb.agent_id, "mac:\n  bogus_slot:\n    behavior: local_rr\n")
                  .ok());
  testbed.run_ttis(30);
  testbed.master().quiesce();

  EXPECT_EQ(enb.agent->policies_rejected(), 1u);
  EXPECT_EQ(enb.agent->policies_applied(), 0u);
  EXPECT_EQ(testbed.master().policies_rejected(), 1u);
  // Nothing entered the last-known-good history.
  EXPECT_EQ(testbed.master().last_known_good_policy(enb.agent_id), "");
}

// -------------------------------------------------------- master rollback --

TEST(MasterRollback, QuarantineRollsBackToLastKnownGood) {
  agent::register_faulty_vsfs();
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(basic_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(50);

  // Establish a known-good policy first.
  ASSERT_TRUE(testbed.master().send_policy(enb.agent_id, kGoodPolicy).ok());
  testbed.run_ttis(30);
  ASSERT_EQ(testbed.master().last_known_good_policy(enb.agent_id), kGoodPolicy);

  // Now delegate a crashing implementation: it applies, fails, quarantines.
  ASSERT_TRUE(
      testbed.master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "faulty_crash").ok());
  ASSERT_TRUE(testbed.master().send_policy(enb.agent_id, kFaultyPolicy).ok());
  testbed.run_ttis(60);
  testbed.master().quiesce();

  EXPECT_EQ(testbed.master().policy_rollbacks(), 1u);
  // The faulty policy was purged from history; the survivor is the good one.
  EXPECT_EQ(testbed.master().last_known_good_policy(enb.agent_id), kGoodPolicy);
  // The rolled-back policy reached the agent and applied.
  EXPECT_EQ(enb.agent->mac().active_implementation(agent::MacControlModule::kDlSchedulerSlot),
            "local_rr");
  EXPECT_GE(enb.agent->policies_applied(), 3u);  // good, faulty, rollback
  EXPECT_EQ(enb.agent->vsf_guard().unscheduled_slots(), 0u);
}

TEST(MasterRollback, RemoteSchedulerDemotesOnQuarantineAndRecovers) {
  agent::register_faulty_vsfs();
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto* remote = static_cast<apps::RemoteSchedulerApp*>(
      testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>()));
  auto& enb = testbed.add_enb(basic_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(50);

  ASSERT_TRUE(testbed.master().send_policy(enb.agent_id, kGoodPolicy).ok());
  testbed.run_ttis(30);
  ASSERT_TRUE(
      testbed.master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "faulty_crash").ok());
  ASSERT_TRUE(testbed.master().send_policy(enb.agent_id, kFaultyPolicy).ok());
  testbed.run_ttis(60);
  testbed.master().quiesce();

  // The quarantine event demoted the agent to local scheduling; the
  // rollback's policy_applied verdict re-promoted it -- the same two-way
  // degradation path the latency fallback uses.
  EXPECT_EQ(remote->demotions(), 1u);
  EXPECT_FALSE(remote->is_demoted(enb.agent_id));
  EXPECT_EQ(testbed.master().policy_rollbacks(), 1u);
}

// ---------------------------------------------------- scenario integration --

TEST(ScenarioIntegration, VsfFaultKindsParseAndRunContained) {
  const std::string yaml =
      "duration_s: 1.5\n"
      "stats_period_ttis: 2\n"
      "enbs:\n"
      "  - enb_id: 1\n"
      "ues:\n"
      "  - enb: 1\n"
      "    cqi: 12\n"
      "    traffic: full_buffer\n"
      "faults:\n"
      "  - at_s: 0.3\n"
      "    kind: vsf_crash\n"
      "    enb: 0\n"
      "  - at_s: 0.8\n"
      "    kind: vsf_invalid\n"
      "    enb: 0\n";
  auto spec = scenario::parse_scenario(yaml);
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->faults.size(), 2u);
  EXPECT_EQ(spec->faults[0].kind, scenario::FaultKind::vsf_crash);
  EXPECT_EQ(spec->faults[1].kind, scenario::FaultKind::vsf_invalid);

  const auto summary = scenario::run_scenario(*spec);
  EXPECT_EQ(summary.vsf_quarantines, 2u);
  EXPECT_GE(summary.vsf_failures, 6u);
  EXPECT_GE(summary.policy_rollbacks, 1u);
  EXPECT_EQ(summary.unscheduled_slots, 0u);
  EXPECT_EQ(summary.agents_on_valid_policy, summary.agents_total);
}

TEST(ScenarioIntegration, UnknownFaultKindRejected) {
  const std::string yaml =
      "duration_s: 1\n"
      "enbs:\n"
      "  - enb_id: 1\n"
      "faults:\n"
      "  - at_s: 0.1\n"
      "    kind: vsf_meltdown\n";
  EXPECT_FALSE(scenario::parse_scenario(yaml).ok());
}

}  // namespace
}  // namespace flexran
