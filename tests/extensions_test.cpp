// Tests for the platform extensions beyond the paper's prototype -- the
// items its Sec. 7 lists as future work: conflict resolution between
// controller apps, northbound RIB abstractions, mobility management with
// X2-style handover, LSA spectrum sharing via a protocol extension, and
// resilience (agent staleness at the master, remote-control fallback at
// the agent).
#include <gtest/gtest.h>

#include "apps/lsa.h"
#include "apps/mobility_manager.h"
#include "apps/remote_scheduler.h"
#include "controller/arbiter.h"
#include "controller/rib_view.h"
#include "phy/mobility.h"
#include "scenario/testbed.h"
#include "traffic/udp.h"

namespace flexran {
namespace {

using scenario::Testbed;

scenario::EnbSpec spec(lte::EnbId id = 1) {
  scenario::EnbSpec s;
  s.enb.enb_id = id;
  s.enb.cells[0].cell_id = id;
  s.agent.name = "enb-" + std::to_string(id);
  return s;
}

stack::UeProfile cqi_ue(int cqi, std::int64_t attach_after = 1) {
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  profile.attach_after_ttis = attach_after;
  return profile;
}

void saturate(Testbed& testbed, std::size_t enb_index, lte::Rnti rnti) {
  auto* dp = testbed.enb(enb_index).data_plane.get();
  testbed.on_tti([&testbed, dp, rnti](std::int64_t) {
    const auto* ue = dp->ue(rnti);
    if (ue != nullptr && ue->dl_queue.total_bytes() < 60'000) {
      (void)testbed.epc().downlink(rnti, 60'000);
    }
  });
}

// -------------------------------------------------------- conflict arbiter --

TEST(ConflictArbiter, DetectsOverlapsAcrossDecisions) {
  ctrl::ConflictArbiter arbiter;
  proto::DlMacConfig first;
  first.target_subframe = 100;
  lte::DlDci dci;
  dci.rnti = 70;
  dci.rbs.set_range(0, 25);
  dci.mcs = 10;
  first.dcis.push_back(dci);
  ASSERT_TRUE(arbiter.claim_dl(1, first).ok());

  // Disjoint PRBs for the same subframe: fine.
  proto::DlMacConfig second;
  second.target_subframe = 100;
  dci.rnti = 71;
  dci.rbs.clear();
  dci.rbs.set_range(25, 25);
  second.dcis = {dci};
  EXPECT_TRUE(arbiter.claim_dl(1, second).ok());

  // Overlapping PRBs: rejected.
  proto::DlMacConfig third;
  third.target_subframe = 100;
  dci.rnti = 72;
  dci.rbs.clear();
  dci.rbs.set_range(10, 5);
  third.dcis = {dci};
  EXPECT_FALSE(arbiter.claim_dl(1, third).ok());
  EXPECT_EQ(arbiter.conflicts_detected(), 1u);

  // Same PRBs, different subframe or agent: fine.
  third.target_subframe = 101;
  EXPECT_TRUE(arbiter.claim_dl(1, third).ok());
  third.target_subframe = 100;
  EXPECT_TRUE(arbiter.claim_dl(2, third).ok());
}

TEST(ConflictArbiter, DetectsSelfOverlapAndPrunes) {
  ctrl::ConflictArbiter arbiter;
  proto::DlMacConfig config;
  config.target_subframe = 50;
  lte::DlDci a;
  a.rnti = 70;
  a.rbs.set_range(0, 30);
  lte::DlDci b;
  b.rnti = 71;
  b.rbs.set_range(20, 10);  // overlaps a
  config.dcis = {a, b};
  EXPECT_FALSE(arbiter.claim_dl(1, config).ok());

  config.dcis = {a};
  ASSERT_TRUE(arbiter.claim_dl(1, config).ok());
  EXPECT_EQ(arbiter.open_claims(), 1u);
  arbiter.prune_before(1, 51);
  EXPECT_EQ(arbiter.open_claims(), 0u);
}

TEST(ConflictArbiter, EndToEndSecondSchedulerAppIsBlocked) {
  // Two remote scheduler apps over the same agent: the arbiter must reject
  // the lower-priority app's overlapping decisions.
  Testbed testbed(scenario::per_tti_master_config());
  auto s = spec();
  s.agent.dl_scheduler = "remote";
  testbed.add_enb(s);
  auto* first = static_cast<apps::RemoteSchedulerApp*>(
      testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>()));
  auto* second = static_cast<apps::RemoteSchedulerApp*>(
      testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>()));

  const auto rnti = testbed.add_ue(0, cqi_ue(15, 10));
  saturate(testbed, 0, rnti);
  testbed.run_ttis(1000);

  EXPECT_GT(first->decisions_sent(), 500u);
  EXPECT_GT(testbed.master().arbiter().conflicts_detected(), 500u);
  // The duplicate app got nothing onto the wire, so the agent applied a
  // consistent schedule and the UE is served normally.
  EXPECT_LT(second->decisions_sent(), first->decisions_sent() / 10);
  EXPECT_TRUE(testbed.enb(0).data_plane->ue(rnti)->connected());
}

// ---------------------------------------------------------------- RIB view --

TEST(RibView, SummariesAndLoadHelpers) {
  ctrl::Rib rib;
  auto& agent1 = rib.agent(1);
  agent1.cells[1].config.cell_id = 1;
  agent1.cells[1].config.bandwidth_mhz = 10.0;
  agent1.cells[1].stats.dl_prbs_in_use = 25;
  agent1.cells[1].stats.active_ues = 3;
  auto& ue = agent1.cells[1].ues[70];
  ue.rnti = 70;
  ue.stats.wb_cqi = 11;
  ue.stats.rlc_queue_bytes = 5000;
  ue.stats.rsrp = {{1, -80.0}, {2, -75.0}, {3, -90.0}};
  ue.cqi_avg.add(11);

  auto& agent2 = rib.agent(2);
  agent2.cells[2].stats.active_ues = 1;

  const auto summaries = ctrl::summarize_ues(rib);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].rnti, 70);
  EXPECT_EQ(summaries[0].cqi, 11);
  EXPECT_EQ(summaries[0].queue_bytes, 5000u);
  ASSERT_TRUE(summaries[0].best_neighbor.has_value());
  EXPECT_EQ(*summaries[0].best_neighbor, 2u);  // -75 beats -90
  EXPECT_DOUBLE_EQ(summaries[0].best_neighbor_rsrp_dbm, -75.0);

  EXPECT_DOUBLE_EQ(ctrl::cell_dl_utilization(agent1.cells[1]), 0.5);
  ASSERT_TRUE(ctrl::least_loaded_agent(rib).has_value());
  EXPECT_EQ(*ctrl::least_loaded_agent(rib), 2u);
}

TEST(RibView, AnalyticsDerivesRates) {
  ctrl::Rib rib;
  auto& agent = rib.agent(1);
  agent.cells[1].config.cell_id = 1;
  auto& ue = agent.cells[1].ues[70];
  ue.rnti = 70;

  ctrl::RibAnalytics analytics;
  ue.stats.dl_bytes_delivered = 0;
  analytics.sample(rib, 0);
  EXPECT_DOUBLE_EQ(analytics.ue_dl_rate_mbps(1, 70), 0.0);
  // 1 MB in one second = 8 Mb/s.
  ue.stats.dl_bytes_delivered = 1'000'000;
  analytics.sample(rib, sim::from_seconds(1.0));
  EXPECT_NEAR(analytics.ue_dl_rate_mbps(1, 70), 8.0, 0.01);
  // Rate decays when delivery stops.
  analytics.sample(rib, sim::from_seconds(2.0));
  EXPECT_LT(analytics.ue_dl_rate_mbps(1, 70), 8.0);
}

// ----------------------------------------------------------------- mobility --

TEST(MobilityTrack, InterpolatesPositionAndProfile) {
  const std::vector<phy::CellSite> sites = {{1, phy::kMacroTxPowerDbm, 0.0, 0.0},
                                            {2, phy::kMacroTxPowerDbm, 1.0, 0.0}};
  phy::MobilityTrack track(sites, {{0, 0.2, 0.0}, {sim::from_seconds(10), 0.8, 0.0}});

  EXPECT_DOUBLE_EQ(track.position_at(0).x_km, 0.2);
  EXPECT_DOUBLE_EQ(track.position_at(sim::from_seconds(5)).x_km, 0.5);
  EXPECT_DOUBLE_EQ(track.position_at(sim::from_seconds(99)).x_km, 0.8);  // clamped

  const auto near_cell1 = track.profile_at(0, 1);
  const auto near_cell2 = track.profile_at(sim::from_seconds(10), 1);
  EXPECT_GT(near_cell1.rx_power_dbm.at(1), near_cell1.rx_power_dbm.at(2));
  EXPECT_LT(near_cell2.rx_power_dbm.at(1), near_cell2.rx_power_dbm.at(2));
}

TEST(Mobility, LocalA3HandoverWithX2MovesUeAndKeepsTraffic) {
  Testbed testbed(scenario::per_tti_master_config());
  auto s1 = spec(1);
  s1.use_radio_env = true;
  auto s2 = spec(2);
  s2.use_radio_env = true;
  auto& enb1 = testbed.add_enb(s1);
  testbed.add_enb(s2);
  testbed.enable_x2();

  // Activate the agent-side A3 handover policy on the source cell.
  ASSERT_TRUE(testbed.master()
                  .send_policy(enb1.agent_id,
                               "rrc:\n  handover_policy:\n    behavior: a3\n"
                               "    parameters:\n      hysteresis_db: 3\n"
                               "      time_to_trigger_ttis: 50\n")
                  .ok());

  auto track = std::make_shared<phy::MobilityTrack>(
      std::vector<phy::CellSite>{{1, phy::kMacroTxPowerDbm, 0.0, 0.0},
                                 {2, phy::kMacroTxPowerDbm, 1.0, 0.0}},
      std::vector<phy::MobilityTrack::Waypoint>{{0, 0.2, 0.0},
                                                {sim::from_seconds(8), 0.85, 0.0}});
  stack::UeProfile profile;
  profile.mobility = track;
  profile.attach_after_ttis = 10;
  const auto ue_id = testbed.add_ue(0, std::move(profile));

  // Continuous downlink through the EPC (the bearer follows the handover).
  testbed.on_tti([&testbed, ue_id](std::int64_t) {
    (void)testbed.epc().downlink(ue_id, 1500);
  });

  testbed.run_seconds(2.0);
  auto location = testbed.locate_ue(ue_id);
  ASSERT_TRUE(location.has_value());
  EXPECT_EQ(location->enb_index, 0u);
  const auto bytes_at_cell1 = testbed.ue_total_bytes(ue_id, lte::Direction::downlink);
  EXPECT_GT(bytes_at_cell1, 100'000u);

  testbed.run_seconds(7.0);  // crosses the midpoint around t=4.6s
  location = testbed.locate_ue(ue_id);
  ASSERT_TRUE(location.has_value());
  EXPECT_EQ(location->enb_index, 1u) << "A3 + X2 must have moved the UE to cell 2";
  EXPECT_EQ(enb1.agent->handovers_executed(), 1u);
  EXPECT_TRUE(testbed.enb(1).data_plane->ue(location->rnti)->connected());
  // Traffic continued at the target cell.
  EXPECT_GT(testbed.ue_total_bytes(ue_id, lte::Direction::downlink), bytes_at_cell1 + 500'000u);
}

TEST(Mobility, CentralizedMobilityManagerCommandsHandover) {
  Testbed testbed(scenario::per_tti_master_config());
  auto s1 = spec(1);
  s1.use_radio_env = true;
  auto s2 = spec(2);
  s2.use_radio_env = true;
  testbed.add_enb(s1);
  testbed.add_enb(s2);
  testbed.enable_x2();

  apps::MobilityManagerConfig config;
  config.hysteresis_db = 3.0;
  config.evaluations_to_trigger = 3;
  config.period_cycles = 20;
  auto* app = static_cast<apps::MobilityManagerApp*>(
      testbed.master().add_app(std::make_unique<apps::MobilityManagerApp>(config)));

  auto track = std::make_shared<phy::MobilityTrack>(
      std::vector<phy::CellSite>{{1, phy::kMacroTxPowerDbm, 0.0, 0.0},
                                 {2, phy::kMacroTxPowerDbm, 1.0, 0.0}},
      std::vector<phy::MobilityTrack::Waypoint>{{0, 0.3, 0.0},
                                                {sim::from_seconds(6), 0.8, 0.0}});
  stack::UeProfile profile;
  profile.mobility = track;
  profile.attach_after_ttis = 10;
  const auto ue_id = testbed.add_ue(0, std::move(profile));

  testbed.run_seconds(7.0);
  EXPECT_GE(app->handovers_commanded(), 1u);
  auto location = testbed.locate_ue(ue_id);
  ASSERT_TRUE(location.has_value());
  EXPECT_EQ(location->enb_index, 1u);
}

// --------------------------------------------------------------------- LSA --

TEST(Lsa, CarrierRestrictionMessageRoundTrip) {
  proto::CarrierRestriction restriction;
  restriction.cell_id = 3;
  restriction.max_dl_prbs = 30;
  auto decoded =
      proto::unpack<proto::CarrierRestriction>(proto::Envelope::decode(proto::pack(restriction)).value())
          .value();
  EXPECT_EQ(decoded.cell_id, 3u);
  EXPECT_EQ(decoded.max_dl_prbs, 30);
  EXPECT_EQ(proto::categorize(proto::MessageType::carrier_restriction, {}),
            proto::MessageCategory::commands);
}

TEST(Lsa, DataPlaneEnforcesRestriction) {
  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 1;
  config.cells[0].cell_id = 1;
  stack::EnodebDataPlane dp(simulator, config);
  EXPECT_EQ(dp.effective_dl_prbs(), 50);
  dp.restrict_dl_prbs(30);
  EXPECT_EQ(dp.effective_dl_prbs(), 30);

  auto profile = cqi_ue(15, 0);
  const auto rnti = dp.add_ue(std::move(profile));
  dp.subframe_begin(1);
  dp.enqueue_dl(rnti, lte::kSrb1, 1000);

  lte::SchedulingDecision decision;
  decision.cell_id = 1;
  decision.subframe = 1;
  lte::DlDci dci;
  dci.rnti = rnti;
  dci.rbs.set_range(25, 10);  // PRBs 25..34 -> touches evacuated band
  dci.mcs = 20;
  decision.dl.push_back(dci);
  const auto rejected_before = dp.grants_rejected();
  ASSERT_TRUE(dp.apply_scheduling_decision(decision).ok());
  EXPECT_EQ(dp.grants_rejected(), rejected_before + 1);
  EXPECT_EQ(dp.dl_prbs_used_last_tti(), 0u);

  dp.restrict_dl_prbs(0);
  EXPECT_EQ(dp.effective_dl_prbs(), 50);
}

TEST(Lsa, IncumbentWindowThrottlesThroughputEndToEnd) {
  Testbed testbed(scenario::per_tti_master_config());
  testbed.add_enb(spec());
  apps::LsaConfig lsa;
  lsa.restricted_prbs = 20;  // incumbent takes 60% of the band
  lsa.incumbent_windows = {{2.0, 4.0}};
  auto* app = static_cast<apps::LsaControllerApp*>(
      testbed.master().add_app(std::make_unique<apps::LsaControllerApp>(lsa)));

  const auto rnti = testbed.add_ue(0, cqi_ue(15));
  saturate(testbed, 0, rnti);

  auto mbps_in = [&](double seconds) {
    const auto before = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
    testbed.run_seconds(seconds);
    const auto after = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
    return scenario::Metrics::mbps(after - before, seconds);
  };

  testbed.run_seconds(0.5);           // attach
  const double before = mbps_in(1.4);  // t in [0.5, 1.9): full band
  testbed.run_seconds(0.2);            // cross into the window
  const double during = mbps_in(1.6);  // t in [2.1, 3.7): restricted
  testbed.run_seconds(0.4);            // leave the window
  const double after = mbps_in(1.5);   // full band again

  EXPECT_TRUE(app->restrictions_sent() >= 2);
  EXPECT_FALSE(app->incumbent_active());
  // 20/50 PRBs -> ~40% of full throughput during the incumbent window.
  EXPECT_NEAR(during / before, 0.4, 0.08);
  EXPECT_NEAR(after / before, 1.0, 0.1);
}

// -------------------------------------------------------------- resilience --

TEST(Resilience, MasterMarksSilentAgentStale) {
  auto config = scenario::per_tti_master_config();
  config.agent_timeout_us = sim::from_ms(50);
  Testbed testbed(config);
  auto& enb = testbed.add_enb(spec());
  testbed.add_ue(0, cqi_ue(10));
  testbed.run_ttis(100);
  EXPECT_FALSE(testbed.master().rib().find_agent(enb.agent_id)->is_stale());

  enb.set_control_down(true);
  testbed.run_ttis(100);
  EXPECT_TRUE(testbed.master().rib().find_agent(enb.agent_id)->is_stale());

  enb.set_control_down(false);
  testbed.run_ttis(20);
  EXPECT_FALSE(testbed.master().rib().find_agent(enb.agent_id)->is_stale());
}

TEST(Resilience, AgentFallsBackToLocalSchedulingDuringOutage) {
  auto config = scenario::per_tti_master_config();
  config.agent_timeout_us = sim::from_ms(50);
  Testbed testbed(config);
  auto s = spec();
  s.agent.dl_scheduler = "remote";
  s.agent.remote_fallback_ttis = 100;
  auto& enb = testbed.add_enb(s);
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>());

  const auto rnti = testbed.add_ue(0, cqi_ue(15, 10));
  saturate(testbed, 0, rnti);
  testbed.run_seconds(1.0);
  ASSERT_TRUE(enb.data_plane->ue(rnti)->connected());
  const auto before_outage = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  EXPECT_GT(before_outage, 0u);
  EXPECT_EQ(enb.agent->fallback_activations(), 0u);

  // Partition the control channel: the master goes silent.
  enb.set_control_down(true);
  testbed.run_seconds(1.0);
  EXPECT_EQ(enb.agent->fallback_activations(), 1u);
  EXPECT_EQ(enb.agent->mac().active_implementation("dl_ue_scheduler"), "local_rr");
  const auto during_outage =
      testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink) - before_outage;
  // The UE kept being served at nearly full rate through the outage.
  EXPECT_GT(scenario::Metrics::mbps(during_outage, 1.0), 18.0);
}

TEST(Resilience, WithoutFallbackOutageStallsRemoteScheduling) {
  Testbed testbed(scenario::per_tti_master_config());
  auto s = spec();
  s.agent.dl_scheduler = "remote";  // no fallback configured
  auto& enb = testbed.add_enb(s);
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>());

  const auto rnti = testbed.add_ue(0, cqi_ue(15, 10));
  saturate(testbed, 0, rnti);
  testbed.run_seconds(1.0);
  const auto before = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);

  enb.set_control_down(true);
  testbed.run_seconds(1.0);
  const auto during = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink) - before;
  // Only the few already-queued schedule-ahead decisions trickle out.
  EXPECT_LT(scenario::Metrics::mbps(during, 1.0), 1.0);
}

// --------------------------------------------------------------------- DRX --

TEST(Drx, MessageRoundTripAndValidation) {
  proto::DrxConfig drx;
  drx.rnti = 70;
  drx.cycle_ttis = 40;
  drx.on_duration_ttis = 10;
  auto decoded =
      proto::unpack<proto::DrxConfig>(proto::Envelope::decode(proto::pack(drx)).value()).value();
  EXPECT_EQ(decoded.rnti, 70);
  EXPECT_EQ(decoded.cycle_ttis, 40);
  EXPECT_EQ(decoded.on_duration_ttis, 10);

  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 1;
  config.cells[0].cell_id = 1;
  stack::EnodebDataPlane dp(simulator, config);
  EXPECT_FALSE(dp.configure_drx(999, 40, 10).ok());  // unknown UE
  const auto rnti = dp.add_ue(cqi_ue(10, 0));
  EXPECT_FALSE(dp.configure_drx(rnti, 40, 0).ok());  // zero on-duration
  EXPECT_TRUE(dp.configure_drx(rnti, 40, 10).ok());
  EXPECT_TRUE(dp.configure_drx(rnti, 0, 0).ok());  // DRX off
}

TEST(Drx, SleepingUeIsHiddenAndUnschedulable) {
  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 1;
  config.cells[0].cell_id = 1;
  stack::EnodebDataPlane dp(simulator, config);
  const auto rnti = dp.add_ue(cqi_ue(12, 0));
  dp.subframe_begin(1);
  dp.enqueue_dl(rnti, lte::kSrb1, 1000);
  ASSERT_TRUE(dp.configure_drx(rnti, 10, 4).ok());

  // Subframe 12 -> (12 % 10) = 2 < 4: awake.
  simulator.run_until(12 * sim::kTtiUs);
  dp.subframe_begin(12);
  EXPECT_EQ(dp.scheduler_view().size(), 1u);

  // Subframe 17 -> (17 % 10) = 7 >= 4: asleep, hidden, grants rejected.
  simulator.run_until(17 * sim::kTtiUs);
  dp.subframe_begin(17);
  EXPECT_TRUE(dp.scheduler_view().empty());
  lte::SchedulingDecision decision;
  decision.cell_id = 1;
  decision.subframe = 17;
  lte::DlDci dci;
  dci.rnti = rnti;
  dci.rbs.set_range(0, 10);
  dci.mcs = 10;
  decision.dl.push_back(dci);
  const auto rejected = dp.grants_rejected();
  ASSERT_TRUE(dp.apply_scheduling_decision(decision).ok());
  EXPECT_EQ(dp.grants_rejected(), rejected + 1);
}

TEST(Drx, DutyCycleBoundsThroughputEndToEnd) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec());
  const auto rnti = testbed.add_ue(0, cqi_ue(15));
  saturate(testbed, 0, rnti);
  testbed.run_seconds(1.0);
  const auto full_bytes = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  const double full_mbps = scenario::Metrics::mbps(full_bytes, 1.0);

  proto::DrxConfig drx;
  drx.rnti = rnti;
  drx.cycle_ttis = 10;
  drx.on_duration_ttis = 5;  // 50% duty cycle
  ASSERT_TRUE(testbed.master().send_drx_config(enb.agent_id, drx).ok());
  testbed.run_ttis(20);
  const auto before = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  testbed.run_seconds(1.0);
  const double drx_mbps = scenario::Metrics::mbps(
      testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink) - before, 1.0);
  EXPECT_NEAR(drx_mbps / full_mbps, 0.5, 0.08);
}

// ---------------------------------------------------------------- remote UL --

TEST(RemoteUl, MasterSchedulesUplinkFromReportedBuffers) {
  Testbed testbed(scenario::per_tti_master_config());
  auto s = spec();
  s.agent.dl_scheduler = "remote";
  s.agent.ul_scheduler = "remote";  // local UL scheduling inactive
  auto& enb = testbed.add_enb(s);
  apps::RemoteSchedulerConfig config;
  config.schedule_ul = true;
  testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>(config));

  const auto rnti = testbed.add_ue(0, cqi_ue(15, 10));
  testbed.run_ttis(200);
  ASSERT_TRUE(enb.data_plane->ue(rnti)->connected());

  // UL backlog only reaches the eNodeB via grants; grants only come from
  // the master's UlMacConfig path.
  auto* dp = enb.data_plane.get();
  testbed.on_tti([dp, rnti](std::int64_t) {
    const auto* ue = dp->ue(rnti);
    if (ue != nullptr && ue->connected() && ue->ul_buffer_bytes < 20'000) {
      dp->enqueue_ul(rnti, 20'000);
    }
  });
  testbed.run_seconds(2.0);
  const double ul_mbps = scenario::Metrics::mbps(
      testbed.metrics().total_bytes(1, rnti, lte::Direction::uplink), 2.0);
  EXPECT_GT(ul_mbps, 4.0);  // remote UL path carries real traffic
}

// ----------------------------------------------------- carrier aggregation --

TEST(CarrierAggregation, MessageRoundTripAndValidation) {
  proto::ScellCommand command;
  command.rnti = 70;
  command.activate = true;
  auto decoded =
      proto::unpack<proto::ScellCommand>(proto::Envelope::decode(proto::pack(command)).value())
          .value();
  EXPECT_EQ(decoded.rnti, 70);
  EXPECT_TRUE(decoded.activate);

  // DCI carrier field survives the wire.
  proto::DlMacConfig config;
  config.cell_id = 1;
  config.target_subframe = 9;
  lte::DlDci dci;
  dci.rnti = 70;
  dci.rbs.set_range(0, 10);
  dci.mcs = 20;
  dci.carrier = 1;
  config.dcis.push_back(dci);
  auto config2 =
      proto::unpack<proto::DlMacConfig>(proto::Envelope::decode(proto::pack(config)).value())
          .value();
  ASSERT_EQ(config2.dcis.size(), 1u);
  EXPECT_EQ(config2.dcis[0].carrier, 1);
}

TEST(CarrierAggregation, DataPlaneValidatesActivation) {
  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 1;
  config.cells[0].cell_id = 1;
  stack::EnodebDataPlane no_scell(simulator, config);
  EXPECT_EQ(no_scell.scell_prbs(), 0);
  EXPECT_FALSE(no_scell.set_scell_active(1, true).ok());  // no SCell at all

  config.scell = lte::CellConfig{};
  config.scell->cell_id = 100;
  stack::EnodebDataPlane dp(simulator, config);
  EXPECT_EQ(dp.scell_prbs(), 50);

  auto plain = cqi_ue(15, 0);
  const auto plain_rnti = dp.add_ue(std::move(plain));
  EXPECT_FALSE(dp.set_scell_active(plain_rnti, true).ok());  // not CA-capable

  auto ca = cqi_ue(15, 0);
  ca.config.carrier_aggregation = true;
  ca.config.ue_category = 6;
  const auto ca_rnti = dp.add_ue(std::move(ca));
  EXPECT_TRUE(dp.set_scell_active(ca_rnti, true).ok());

  // An SCell grant for the non-activated UE is rejected; for the activated
  // UE it transmits.
  dp.subframe_begin(1);
  dp.enqueue_dl(plain_rnti, lte::kSrb1, 1000);
  dp.enqueue_dl(ca_rnti, lte::kSrb1, 1000);
  lte::SchedulingDecision decision;
  decision.cell_id = 1;
  decision.subframe = 1;
  lte::DlDci dci;
  dci.rbs.set_range(0, 10);
  dci.mcs = 15;
  dci.carrier = 1;
  dci.rnti = plain_rnti;
  decision.dl.push_back(dci);
  dci.rnti = ca_rnti;
  decision.dl.push_back(dci);  // same PRBs are fine: different UEs rejected/accepted
  const auto rejected_before = dp.grants_rejected();
  ASSERT_TRUE(dp.apply_scheduling_decision(decision).ok());
  EXPECT_EQ(dp.grants_rejected(), rejected_before + 1);
}

TEST(CarrierAggregation, ScellHarqRetransmitsOnItsOwnCarrier) {
  // Aggressive MCS on the SCell: NACKed blocks must retransmit via the
  // SCell HARQ entity and eventually deliver, without touching PCell HARQ.
  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 1;
  config.cells[0].cell_id = 1;
  config.scell = lte::CellConfig{};
  config.scell->cell_id = 100;
  stack::EnodebDataPlane dp(simulator, config, nullptr, /*seed=*/7);

  auto profile = cqi_ue(8, 0);
  profile.config.carrier_aggregation = true;
  const auto rnti = dp.add_ue(std::move(profile));
  ASSERT_TRUE(dp.set_scell_active(rnti, true).ok());

  std::uint64_t delivered = 0;
  dp.set_delivery_callback([&](lte::Rnti, std::uint32_t bytes, lte::Direction dir) {
    if (dir == lte::Direction::downlink) delivered += bytes;
  });

  for (std::int64_t sf = 1; sf <= 600; ++sf) {
    simulator.run_until(sf * sim::kTtiUs);
    dp.subframe_begin(sf);
    const auto* ue = dp.ue(rnti);
    if (ue->dl_queue.total_bytes() < 10'000) dp.enqueue_dl(rnti, lte::kDefaultDrb, 10'000);
    lte::SchedulingDecision decision;
    decision.cell_id = 1;
    decision.subframe = sf;
    lte::DlDci dci;
    dci.rnti = rnti;
    dci.rbs.set_range(0, 50);
    // Overshoot the channel by 2 MCS steps: ~65% first-tx BLER.
    dci.mcs = std::min(lte::cqi_to_mcs(ue->reported_cqi_protected) + 2, lte::kMaxMcs);
    dci.carrier = 1;
    decision.dl.push_back(dci);
    ASSERT_TRUE(dp.apply_scheduling_decision(decision).ok());
    dp.subframe_end(sf);
  }
  const auto* ue = dp.ue(rnti);
  EXPECT_GT(ue->dl_blocks_nacked, 50u);  // retransmissions happened...
  EXPECT_GT(delivered, 400'000u);        // ...and blocks still got through
}

TEST(CarrierAggregation, ScellActivationScalesThroughputEndToEnd) {
  Testbed testbed(scenario::per_tti_master_config());
  auto s = spec();
  s.enb.scell = lte::CellConfig{};
  s.enb.scell->cell_id = 101;
  s.agent.dl_scheduler = "local_ca_rr";
  auto& enb = testbed.add_enb(s);

  auto profile = cqi_ue(15);
  profile.config.carrier_aggregation = true;
  profile.config.ue_category = 6;  // cap above 2x carrier throughput
  const auto rnti = testbed.add_ue(0, std::move(profile));
  saturate(testbed, 0, rnti);
  testbed.run_seconds(1.0);
  const auto base = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  const double pcell_only_mbps = scenario::Metrics::mbps(base, 1.0);

  // Master activates the secondary carrier (Table 1 CA command).
  proto::ScellCommand activate;
  activate.rnti = rnti;
  activate.activate = true;
  ASSERT_TRUE(testbed.master().send_scell_command(enb.agent_id, activate).ok());
  testbed.run_ttis(20);
  const auto after_activation = testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  testbed.run_seconds(1.0);
  const double ca_mbps = scenario::Metrics::mbps(
      testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink) - after_activation, 1.0);
  EXPECT_NEAR(ca_mbps / pcell_only_mbps, 2.0, 0.2);

  // Deactivation returns to single-carrier throughput.
  activate.activate = false;
  ASSERT_TRUE(testbed.master().send_scell_command(enb.agent_id, activate).ok());
  testbed.run_ttis(20);
  const auto after_deactivation =
      testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink);
  testbed.run_seconds(1.0);
  const double back_mbps = scenario::Metrics::mbps(
      testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink) - after_deactivation, 1.0);
  EXPECT_NEAR(back_mbps / pcell_only_mbps, 1.0, 0.1);
}

// ----------------------------------------------------------- non-RT master --

TEST(NonRealTime, CoarseCycleMasterStillManagesAgents) {
  // Paper Sec. 4.3.3: the master "can operate in a non real-time mode...
  // with the advantage of being more lightweight". Drive the task manager
  // every 10 ms instead of every TTI; local schedulers keep the data plane
  // running and the RIB still converges.
  sim::Simulator simulator;
  ctrl::MasterConfig config = scenario::per_tti_master_config(10);
  config.task_manager.real_time = false;
  config.task_manager.cycle_us = 10'000;
  ctrl::MasterController master(simulator, config);

  lte::EnbConfig enb_config;
  enb_config.enb_id = 1;
  enb_config.cells[0].cell_id = 1;
  stack::EnodebDataPlane dp(simulator, enb_config);
  agent::AgentConfig agent_config;
  agent_config.enb_id = 1;
  agent::Agent agent(simulator, dp, agent_config);
  auto transports = net::make_sim_transport_pair(simulator);
  master.add_agent(*transports.a);
  agent.connect(*transports.b);

  auto profile = cqi_ue(11, 5);
  const auto rnti = dp.add_ue(std::move(profile));

  sim::TtiTicker ticker(simulator);
  ticker.subscribe([&](std::int64_t tti) {
    dp.subframe_begin(tti);
    dp.subframe_end(tti);
    if (tti % 10 == 0) master.run_cycle();  // non-RT: every 10th TTI
  });
  ticker.start();
  simulator.run_until(sim::from_seconds(1.0));

  EXPECT_TRUE(dp.ue(rnti)->connected());
  const auto* ue_node = master.rib().find_ue(1, rnti);
  ASSERT_NE(ue_node, nullptr);
  EXPECT_EQ(ue_node->stats.wb_cqi, 11);
  EXPECT_EQ(master.cycles_run(), 100);
}

}  // namespace
}  // namespace flexran
