// Decode hardening (docs/fault_tolerance.md): every wire decoder must
// survive hostile input -- truncated frames, random byte corruption, and
// reordered fields -- returning a clean util::Result instead of crashing
// or reading out of bounds. The whole suite runs under the ASan/UBSan leg
// of tools/check.sh, so an out-of-bounds read or UB in a decoder fails the
// gate even when the decode happens to "succeed".
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lte/abs.h"
#include "proto/checkpoint.h"
#include "proto/messages.h"
#include "proto/wire.h"

namespace {

using namespace flexran;
using namespace flexran::proto;

/// One decoder surface under test: a valid encoding plus a type-erased
/// decode that reports success/failure (the value itself is irrelevant --
/// the sanitizers judge the memory behavior).
struct Surface {
  std::string name;
  std::vector<std::uint8_t> valid;
  std::function<bool(std::span<const std::uint8_t>)> decode;
};

template <typename M>
Surface body_surface(std::string name, const M& sample) {
  WireEncoder enc;
  sample.encode_body(enc);
  return {std::move(name), enc.take(),
          [](std::span<const std::uint8_t> data) { return M::decode_body(data).ok(); }};
}

std::vector<Surface> all_surfaces() {
  std::vector<Surface> surfaces;

  Envelope envelope;
  envelope.type = MessageType::stats_reply;
  envelope.xid = 77;
  envelope.epoch = 3;
  envelope.queue_status = 1;
  envelope.throttle_hint = 4;
  envelope.ts_us = 123456;
  envelope.ts_echo_us = 123000;
  envelope.master_epoch = 2;
  envelope.retry_after_ms = 40;
  envelope.body = {0x08, 0x01};
  surfaces.push_back({"Envelope", envelope.encode(),
                      [](std::span<const std::uint8_t> data) {
                        return Envelope::decode(data).ok();
                      }});

  Hello hello;
  hello.enb_id = 17;
  hello.name = "macro-17";
  hello.n_cells = 2;
  hello.capabilities = {"mac", "rrc", "pdcp"};
  hello.epoch = 5;
  surfaces.push_back(body_surface("Hello", hello));

  EchoRequest echo_request;
  echo_request.subframe = 1234;
  echo_request.timestamp_us = 987654;
  surfaces.push_back(body_surface("EchoRequest", echo_request));

  EchoReply echo_reply;
  echo_reply.subframe = 1234;
  echo_reply.echoed_timestamp_us = 987654;
  surfaces.push_back(body_surface("EchoReply", echo_reply));

  EnbConfigReply enb_config;
  enb_config.enb_id = 17;
  for (int i = 0; i < 2; ++i) {
    CellConfigMsg cell;
    cell.cell_id = static_cast<lte::CellId>(i + 1);
    cell.bandwidth_mhz = 20.0;
    cell.pci = static_cast<std::uint16_t>(100 + i);
    enb_config.cells.push_back(cell);
  }
  surfaces.push_back(body_surface("EnbConfigReply", enb_config));

  UeConfigReply ue_config;
  UeConfigMsg ue;
  ue.rnti = 70;
  ue.primary_cell = 1;
  ue.carrier_aggregation = true;
  ue_config.ues.push_back(ue);
  surfaces.push_back(body_surface("UeConfigReply", ue_config));

  LcConfigReply lc_config;
  LcConfigMsg lc;
  lc.rnti = 70;
  lc.lc_group = 2;
  lc_config.channels.push_back(lc);
  surfaces.push_back(body_surface("LcConfigReply", lc_config));

  StatsRequest stats_request;
  stats_request.request_id = 9;
  stats_request.mode = ReportMode::periodic;
  stats_request.periodicity_ttis = 5;
  stats_request.ues = {70, 71};
  surfaces.push_back(body_surface("StatsRequest", stats_request));

  StatsReply stats_reply;
  stats_reply.request_id = 9;
  stats_reply.subframe = 4321;
  UeStatsReport report;
  report.rnti = 70;
  report.bsr_bytes = {100, 200, 0, 50};
  report.wb_cqi = 12;
  report.rlc_queue_bytes = 4000;
  report.rsrp.push_back({1, -95.5});
  report.rsrp.push_back({2, -101.0});
  stats_reply.ue_reports.push_back(report);
  CellStatsReport cell_report;
  cell_report.cell_id = 1;
  cell_report.dl_prbs_in_use = 40;
  cell_report.active_ues = 2;
  stats_reply.cell_reports.push_back(cell_report);
  surfaces.push_back(body_surface("StatsReply", stats_reply));

  DlMacConfig dl_mac;
  dl_mac.cell_id = 1;
  dl_mac.target_subframe = 5000;
  lte::DlDci dci;
  dci.rnti = 70;
  dci.rbs.set_range(0, 25);
  dci.mcs = 20;
  dl_mac.dcis.push_back(dci);
  surfaces.push_back(body_surface("DlMacConfig", dl_mac));

  UlMacConfig ul_mac;
  ul_mac.cell_id = 1;
  ul_mac.target_subframe = 5000;
  lte::UlDci ul_dci;
  ul_dci.rnti = 70;
  ul_dci.rbs.set_range(10, 8);
  ul_dci.mcs = 12;
  ul_mac.dcis.push_back(ul_dci);
  surfaces.push_back(body_surface("UlMacConfig", ul_mac));

  HandoverCommand handover;
  handover.rnti = 70;
  handover.source_cell = 1;
  handover.target_cell = 2;
  surfaces.push_back(body_surface("HandoverCommand", handover));

  AbsConfig abs;
  abs.cell_id = 1;
  abs.pattern = lte::AbsPattern::per_frame(2);
  abs.mute_during_abs = true;
  surfaces.push_back(body_surface("AbsConfig", abs));

  CarrierRestriction restriction;
  restriction.cell_id = 1;
  restriction.max_dl_prbs = 30;
  surfaces.push_back(body_surface("CarrierRestriction", restriction));

  DrxConfig drx;
  drx.rnti = 70;
  drx.cycle_ttis = 40;
  drx.on_duration_ttis = 8;
  surfaces.push_back(body_surface("DrxConfig", drx));

  ScellCommand scell;
  scell.rnti = 70;
  scell.activate = false;
  surfaces.push_back(body_surface("ScellCommand", scell));

  EventNotification event;
  event.event = EventType::vsf_failure;
  event.subframe = 6000;
  event.rnti = 70;
  event.xid = 12;
  event.module = "mac";
  event.vsf = "dl_ue_scheduler";
  event.implementation = "faulty_crash";
  event.failure_kind = VsfFailureKind::exception;
  event.failure_count = 3;
  event.detail = "threw std::runtime_error";
  surfaces.push_back(body_surface("EventNotification", event));

  EventSubscription subscription;
  subscription.events = {EventType::ue_attach, EventType::rach_attempt};
  subscription.enable = true;
  surfaces.push_back(body_surface("EventSubscription", subscription));

  ControlDelegation delegation;
  delegation.module = "mac";
  delegation.vsf = "dl_ue_scheduler";
  delegation.implementation = "local_pf";
  delegation.version = 2;
  delegation.blob = {0xde, 0xad, 0xbe, 0xef};
  surfaces.push_back(body_surface("ControlDelegation", delegation));

  PolicyReconfiguration policy;
  policy.yaml = "mac:\n  dl_ue_scheduler:\n    behavior: local_rr\n";
  surfaces.push_back(body_surface("PolicyReconfiguration", policy));

  MasterCheckpoint checkpoint;
  checkpoint.incarnation = 3;
  checkpoint.saved_at_us = 2'000'000;
  checkpoint.shard = 1;
  checkpoint.agent_ids = {1, 4};
  CheckpointAgent agent;
  agent.id = 1;
  agent.name = "macro-a";
  agent.capabilities = {"mac", "rrc"};
  agent.epoch = 2;
  agent.config = enb_config;
  agent.reports.push_back(stats_request);
  agent.policy_history.push_back(policy.yaml);
  checkpoint.agents.push_back(agent);
  surfaces.push_back({"MasterCheckpoint", checkpoint.encode(),
                      [](std::span<const std::uint8_t> data) {
                        return MasterCheckpoint::decode(data).ok();
                      }});

  return surfaces;
}

/// Splits a wire buffer into its top-level fields (header + value slices).
/// Returns empty on malformed input.
std::vector<std::vector<std::uint8_t>> split_fields(std::span<const std::uint8_t> data) {
  std::vector<std::vector<std::uint8_t>> fields;
  std::size_t pos = 0;
  auto varint = [&](std::uint64_t& out) {
    out = 0;
    int shift = 0;
    while (pos < data.size() && shift < 64) {
      const std::uint8_t byte = data[pos++];
      out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return true;
      shift += 7;
    }
    return false;
  };
  while (pos < data.size()) {
    const std::size_t start = pos;
    std::uint64_t tag = 0;
    if (!varint(tag)) return {};
    const auto type = static_cast<WireType>(tag & 0x7);
    std::uint64_t value = 0;
    switch (type) {
      case WireType::varint:
        if (!varint(value)) return {};
        break;
      case WireType::fixed64:
        if (pos + 8 > data.size()) return {};
        pos += 8;
        break;
      case WireType::length_delimited:
        if (!varint(value) || pos + value > data.size()) return {};
        pos += value;
        break;
      case WireType::fixed32:
        if (pos + 4 > data.size()) return {};
        pos += 4;
        break;
      default:
        return {};
    }
    fields.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(start),
                        data.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return fields;
}

// Every valid sample decodes; establishes the baseline the mutations start
// from (a surface whose valid form fails would make the fuzz moot).
TEST(ProtoRobustness, ValidSamplesDecode) {
  for (const auto& surface : all_surfaces()) {
    EXPECT_TRUE(surface.decode(surface.valid)) << surface.name;
    EXPECT_FALSE(surface.valid.empty()) << surface.name;
  }
}

// Truncation at every byte boundary: prefixes that cut a varint or a
// length-delimited field mid-value must fail cleanly; prefixes that land
// on a field boundary are simply shorter valid messages. Either way: no
// crash, no sanitizer finding.
TEST(ProtoRobustness, TruncationAtEveryPrefix) {
  for (const auto& surface : all_surfaces()) {
    for (std::size_t len = 0; len < surface.valid.size(); ++len) {
      std::span<const std::uint8_t> prefix(surface.valid.data(), len);
      (void)surface.decode(prefix);  // must return, not crash
    }
    // Cutting into the final field's value (not at a boundary) must fail.
    if (surface.valid.size() > 1) {
      std::span<const std::uint8_t> cut(surface.valid.data(), surface.valid.size() - 1);
      const auto fields = split_fields(cut);
      if (fields.empty()) {
        EXPECT_FALSE(surface.decode(cut)) << surface.name;
      }
    }
  }
}

// Deterministic byte corruption: single-byte overwrites at every offset
// with adversarial values, plus a PRNG flip sweep. Decoders may accept a
// mutation that still parses (field numbers are free), but must never
// crash or trip the sanitizers.
TEST(ProtoRobustness, CorruptedBytesNeverCrash) {
  for (const auto& surface : all_surfaces()) {
    for (const std::uint8_t poison : {0x00, 0xff, 0x80, 0x7f}) {
      for (std::size_t i = 0; i < surface.valid.size(); ++i) {
        std::vector<std::uint8_t> mutated = surface.valid;
        mutated[i] = poison;
        (void)surface.decode(mutated);
      }
    }
    // xorshift PRNG sweep: multi-byte corruption patterns.
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (int round = 0; round < 256; ++round) {
      std::vector<std::uint8_t> mutated = surface.valid;
      for (int flip = 0; flip < 4; ++flip) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        mutated[state % mutated.size()] ^=
            static_cast<std::uint8_t>(1u << ((state >> 8) % 8));
      }
      (void)surface.decode(mutated);
    }
  }
}

// Protobuf wire format guarantees field order is free: splitting a valid
// message into its top-level fields and re-joining them reversed must
// still decode (repeated-field contents may reorder; that is fine).
TEST(ProtoRobustness, ShuffledFieldsStillDecode) {
  for (const auto& surface : all_surfaces()) {
    const auto fields = split_fields(surface.valid);
    ASSERT_FALSE(fields.empty()) << surface.name;
    std::vector<std::uint8_t> reversed;
    for (auto it = fields.rbegin(); it != fields.rend(); ++it) {
      reversed.insert(reversed.end(), it->begin(), it->end());
    }
    EXPECT_TRUE(surface.decode(reversed)) << surface.name;
  }
}

// The checkpoint codec's versioning: a missing or future version field is
// a clean, typed refusal (a master must never warm-load state it cannot
// interpret).
TEST(ProtoRobustness, CheckpointVersionGate) {
  MasterCheckpoint checkpoint;
  checkpoint.incarnation = 1;
  auto bytes = checkpoint.encode();
  ASSERT_TRUE(MasterCheckpoint::decode(bytes).ok());

  WireEncoder future;
  future.field_varint(1, MasterCheckpoint::kVersion + 1);
  auto future_bytes = future.take();
  auto decoded = MasterCheckpoint::decode(future_bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, util::Error::Code::unsupported);

  const std::vector<std::uint8_t> empty;
  EXPECT_FALSE(MasterCheckpoint::decode(empty).ok());
}

// Shard identity stamping (docs/sharded_control.md "Shard failover"): the
// shard index and the owned-agent-id roster round-trip, and a checkpoint
// that never carried a shard field -- anything written before sharding, or
// by a standalone master -- decodes back to the standalone sentinel (-1),
// not to shard 0.
TEST(ProtoRobustness, CheckpointShardIdentityRoundTrips) {
  MasterCheckpoint checkpoint;
  checkpoint.incarnation = 2;
  checkpoint.shard = 3;
  checkpoint.agent_ids = {7, 11, 13};
  auto bytes = checkpoint.encode();
  auto decoded = MasterCheckpoint::decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shard, 3);
  EXPECT_EQ(decoded->agent_ids, (std::vector<std::uint32_t>{7, 11, 13}));

  // Shard 0 must survive the +1 wire bias (0 is a real shard, not "unset").
  MasterCheckpoint zero;
  zero.shard = 0;
  auto zero_bytes = zero.encode();
  auto zero_decoded = MasterCheckpoint::decode(zero_bytes);
  ASSERT_TRUE(zero_decoded.ok());
  EXPECT_EQ(zero_decoded->shard, 0);

  // Standalone default: field stays off the wire, decodes back to -1.
  MasterCheckpoint standalone;
  standalone.incarnation = 1;
  auto standalone_bytes = standalone.encode();
  auto standalone_decoded = MasterCheckpoint::decode(standalone_bytes);
  ASSERT_TRUE(standalone_decoded.ok());
  EXPECT_EQ(standalone_decoded->shard, -1);
  EXPECT_TRUE(standalone_decoded->agent_ids.empty());
}

// The zero-allocation receive paths (docs/wire_fastpath.md) decode into a
// long-lived struct instead of a fresh one. A failed decode of hostile
// bytes must leave that struct reusable: the next valid decode_into must
// produce exactly what a fresh decode would, with no stale fields or stale
// repeated-entry tails leaking through.
TEST(ProtoRobustness, ReusedEnvelopeSurvivesHostileBytes) {
  Envelope valid;
  valid.type = MessageType::stats_reply;
  valid.xid = 42;
  valid.epoch = 7;
  valid.ts_us = 5555;
  valid.body = {0x08, 0x09, 0x10, 0x0c};
  const auto wire = valid.encode();

  Envelope reused;
  for (std::size_t len = 0; len < wire.size(); ++len) {
    (void)Envelope::decode_into(std::span(wire.data(), len), reused);
  }
  for (const std::uint8_t poison : {0x00, 0xff, 0x80}) {
    for (std::size_t i = 0; i < wire.size(); ++i) {
      std::vector<std::uint8_t> mutated = wire;
      mutated[i] = poison;
      (void)Envelope::decode_into(mutated, reused);
    }
  }
  ASSERT_TRUE(Envelope::decode_into(wire, reused).ok());
  const auto fresh = Envelope::decode(wire);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(reused.type, fresh->type);
  EXPECT_EQ(reused.xid, fresh->xid);
  EXPECT_EQ(reused.epoch, fresh->epoch);
  EXPECT_EQ(reused.ts_us, fresh->ts_us);
  EXPECT_EQ(reused.body, fresh->body);
}

TEST(ProtoRobustness, ReusedStatsReplySurvivesHostileBytes) {
  StatsReply valid;
  valid.request_id = 3;
  valid.subframe = 900;
  for (int u = 0; u < 3; ++u) {
    UeStatsReport report;
    report.rnti = static_cast<lte::Rnti>(70 + u);
    report.bsr_bytes = {10, 20, 30, 40};
    report.wb_cqi = static_cast<std::uint8_t>(8 + u);
    report.rsrp.push_back({1, -90.0 - u});
    valid.ue_reports.push_back(report);
  }
  WireEncoder enc;
  valid.encode_body(enc);
  const auto wire = enc.take();

  StatsReply reused;
  for (std::size_t len = 0; len < wire.size(); ++len) {
    (void)StatsReply::decode_body_into(std::span(wire.data(), len), reused);
  }
  for (const std::uint8_t poison : {0x00, 0xff, 0x80}) {
    for (std::size_t i = 0; i < wire.size(); ++i) {
      std::vector<std::uint8_t> mutated = wire;
      mutated[i] = poison;
      (void)StatsReply::decode_body_into(mutated, reused);
    }
  }
  ASSERT_TRUE(StatsReply::decode_body_into(wire, reused).ok());
  const auto fresh = StatsReply::decode_body(wire);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(reused.request_id, fresh->request_id);
  EXPECT_EQ(reused.subframe, fresh->subframe);
  ASSERT_EQ(reused.ue_reports.size(), fresh->ue_reports.size());
  for (std::size_t u = 0; u < fresh->ue_reports.size(); ++u) {
    EXPECT_EQ(reused.ue_reports[u].rnti, fresh->ue_reports[u].rnti);
    EXPECT_EQ(reused.ue_reports[u].wb_cqi, fresh->ue_reports[u].wb_cqi);
    EXPECT_EQ(reused.ue_reports[u].bsr_bytes, fresh->ue_reports[u].bsr_bytes);
    ASSERT_EQ(reused.ue_reports[u].rsrp.size(), fresh->ue_reports[u].rsrp.size());
  }
}

}  // namespace
