// Cross-module integration tests: full platform runs exercising the use
// cases end to end (stack + agent + protocol + master + apps + traffic).
#include <gtest/gtest.h>

#include "apps/mec_dash.h"
#include "scenario/dash_session.h"
#include "scenario/eicic_scenario.h"
#include "scenario/testbed.h"
#include "traffic/udp.h"

namespace flexran {
namespace {

using scenario::Testbed;

scenario::EnbSpec spec(lte::EnbId id = 1) {
  scenario::EnbSpec s;
  s.enb.enb_id = id;
  s.enb.cells[0].cell_id = id;
  s.agent.name = "enb-" + std::to_string(id);
  return s;
}

stack::UeProfile cqi_ue(int cqi) {
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  return profile;
}

// --------------------------------------------------------- TCP over stack --

TEST(Integration, TcpGoodputOverRealStackFollowsCqi) {
  auto run = [](int cqi) {
    Testbed testbed(scenario::per_tti_master_config());
    auto& enb = testbed.add_enb(spec());
    const auto rnti = testbed.add_ue(0, cqi_ue(cqi));
    testbed.run_ttis(50);

    stack::EnodebDataPlane* dp = enb.data_plane.get();
    traffic::TcpFlow flow(
        testbed.sim(),
        [&testbed, rnti](std::uint32_t bytes) { (void)testbed.epc().downlink(rnti, bytes); },
        [dp, rnti]() -> std::uint32_t {
          const auto* ue = dp->ue(rnti);
          return ue != nullptr ? ue->dl_queue.total_bytes() : 0;
        });
    testbed.add_delivery_listener(
        0, [&flow, rnti](lte::Rnti r, std::uint32_t bytes, lte::Direction dir) {
          if (r == rnti && dir == lte::Direction::downlink) flow.on_delivered(bytes);
        });
    testbed.on_tti([&flow](std::int64_t tti) { flow.on_tti(tti); });
    flow.start_persistent();
    testbed.run_seconds(5.0);
    return flow.mean_goodput_mbps(5.0);
  };

  const double at_cqi2 = run(2);
  const double at_cqi4 = run(4);
  const double at_cqi10 = run(10);
  const double at_cqi15 = run(15);
  // Table 2 shape: strictly increasing with CQI, and a plausible fraction of
  // the PHY capacity at each point.
  EXPECT_LT(at_cqi2, at_cqi4);
  EXPECT_LT(at_cqi4, at_cqi10);
  EXPECT_LT(at_cqi10, at_cqi15);
  EXPECT_GT(at_cqi2, 0.5);
  EXPECT_LT(at_cqi2, 1.4);
  EXPECT_GT(at_cqi10, 8.0);
  EXPECT_LT(at_cqi10, 14.0);
}

// -------------------------------------------------------- DASH over stack --

TEST(Integration, AssistedDashBeatsReferenceUnderCqiSwings) {
  // Fig. 11b in miniature: CQI toggling 10 <-> 4 every 15 s; the
  // MEC-assisted player must avoid freezes and keep a sane bitrate while
  // the buffer-probing reference player overshoots.
  auto run = [](traffic::AbrMode mode, int& freezes, double& mean_bitrate) {
    Testbed testbed(scenario::per_tti_master_config());
    auto& enb = testbed.add_enb(spec());
    stack::UeProfile profile;
    profile.dl_channel =
        phy::ScheduledCqiChannel::square_wave(10, 4, sim::from_seconds(15), sim::from_seconds(90));
    const auto rnti = testbed.add_ue(0, std::move(profile));
    testbed.run_ttis(50);

    traffic::DashClientConfig config;
    config.mode = mode;
    config.buffer_probing = mode == traffic::AbrMode::reference;
    config.step_up_buffer_s = 10.0;
    scenario::DashSession session(testbed, 0, rnti, traffic::paper_video_4k(), config);

    if (mode == traffic::AbrMode::assisted) {
      apps::MecDashApp::Config mec;
      mec.agent = enb.agent_id;
      mec.period_cycles = 100;
      auto* client = &session.client();
      testbed.master().add_app(std::make_unique<apps::MecDashApp>(
          mec, [client](lte::Rnti, double mbps) { client->set_bitrate_cap_mbps(mbps); }));
    }
    session.start();
    testbed.run_seconds(80.0);
    freezes = session.client().freeze_count();
    mean_bitrate = session.client().bitrate_series().mean_in(10, 80);
  };

  int reference_freezes = 0;
  double reference_bitrate = 0;
  run(traffic::AbrMode::reference, reference_freezes, reference_bitrate);
  int assisted_freezes = 0;
  double assisted_bitrate = 0;
  run(traffic::AbrMode::assisted, assisted_freezes, assisted_bitrate);

  EXPECT_EQ(assisted_freezes, 0);
  EXPECT_GT(assisted_bitrate, 2.8);  // uses the channel, not the basement
  EXPECT_LE(assisted_freezes, reference_freezes);
  // The reference player overshoots above the assisted player's cap at least
  // transiently; its own mean may be higher or lower, but it pays in
  // stability. Require that it actually probed above sustainable at times.
  double reference_peak = reference_bitrate;
  EXPECT_GE(reference_peak, 0.0);  // (peak asserted in traffic_test)
}

// --------------------------------------------------------------- eICIC -----

TEST(Integration, EicicModesOrderAsInPaper) {
  scenario::EicicScenarioConfig config;
  config.warmup_s = 1.0;
  config.measure_s = 3.0;

  config.mode = apps::EicicMode::uncoordinated;
  const auto uncoordinated = scenario::run_eicic_scenario(config);
  config.mode = apps::EicicMode::eicic;
  const auto eicic = scenario::run_eicic_scenario(config);
  config.mode = apps::EicicMode::optimized;
  const auto optimized = scenario::run_eicic_scenario(config);

  // Fig. 10a ordering: optimized > eICIC > uncoordinated.
  EXPECT_GT(eicic.network_mbps, uncoordinated.network_mbps);
  EXPECT_GT(optimized.network_mbps, 1.15 * eicic.network_mbps);
  // Fig. 10b: the small cell does no worse under optimized eICIC; the gain
  // is all on the macro side.
  EXPECT_NEAR(optimized.small_mbps, eicic.small_mbps, 0.5);
  EXPECT_GT(optimized.macro_mbps, eicic.macro_mbps);
}

// -------------------------------------------------- multi-agent stability ---

TEST(Integration, ThreeAgentsSixteenUesRunStably) {
  // The Fig. 8 configuration: 3 agents x 16 UEs with per-TTI reporting.
  Testbed testbed(scenario::per_tti_master_config());
  for (lte::EnbId id = 1; id <= 3; ++id) testbed.add_enb(spec(id));
  for (std::size_t e = 0; e < 3; ++e) {
    for (int i = 0; i < 16; ++i) {
      auto profile = cqi_ue(8 + (i % 8));
      profile.attach_after_ttis = 5 + i;
      testbed.add_ue(e, std::move(profile));
    }
  }
  testbed.run_ttis(500);

  EXPECT_EQ(testbed.master().rib().agent_count(), 3u);
  EXPECT_EQ(testbed.master().rib().ue_count(), 48u);
  for (std::size_t e = 0; e < 3; ++e) {
    for (const auto rnti : testbed.enb(e).data_plane->ue_rntis()) {
      EXPECT_TRUE(testbed.enb(e).data_plane->ue(rnti)->connected());
    }
  }
  EXPECT_GT(testbed.master().cycles_run(), 490);
  EXPECT_GT(testbed.master().updates_applied(), 1000u);
  // The updater keeps up: at most one tick's worth of messages in flight.
  EXPECT_LT(testbed.master().pending_updates(), 20u);
}

// ------------------------------------------------------------ determinism --

TEST(Integration, IdenticalSeedsProduceIdenticalRuns) {
  // The whole platform must be deterministic under the discrete-event
  // simulator: same configuration -> bit-identical outcomes. Guards against
  // hidden global state, unseeded randomness, or container-order effects.
  auto run_once = [] {
    Testbed testbed(scenario::per_tti_master_config());
    auto s = spec();
    s.seed = 42;
    auto& enb = testbed.add_enb(s);
    std::vector<lte::Rnti> ues;
    for (int i = 0; i < 4; ++i) {
      auto profile = cqi_ue(6 + 2 * i);
      profile.attach_after_ttis = 3 + i;
      ues.push_back(testbed.add_ue(0, std::move(profile)));
    }
    testbed.on_tti([&](std::int64_t) {
      for (auto rnti : ues) {
        const auto* ue = enb.data_plane->ue(rnti);
        if (ue != nullptr && ue->dl_queue.total_bytes() < 30'000) {
          (void)testbed.epc().downlink(rnti, 30'000);
        }
      }
    });
    testbed.run_seconds(2.0);
    std::vector<std::uint64_t> out;
    for (auto rnti : ues) {
      out.push_back(testbed.metrics().total_bytes(1, rnti, lte::Direction::downlink));
    }
    out.push_back(enb.agent->tx_accounting().total_bytes());
    out.push_back(testbed.master().updates_applied());
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------------------------------ stress --

TEST(Integration, TenAgentsFiftyUesEachStayStable) {
  Testbed testbed(scenario::per_tti_master_config(/*stats period=*/5));
  const int kAgents = 10;
  const int kUesPerAgent = 50;
  for (lte::EnbId id = 1; id <= kAgents; ++id) testbed.add_enb(spec(id));
  for (std::size_t e = 0; e < kAgents; ++e) {
    for (int i = 0; i < kUesPerAgent; ++i) {
      auto profile = cqi_ue(4 + (i % 12));
      profile.attach_after_ttis = 2 + i;  // staggered RACH
      testbed.add_ue(e, std::move(profile));
    }
  }
  testbed.run_seconds(1.0);

  EXPECT_EQ(testbed.master().rib().ue_count(), kAgents * kUesPerAgent);
  std::size_t connected = 0;
  for (std::size_t e = 0; e < kAgents; ++e) {
    for (const auto rnti : testbed.enb(e).data_plane->ue_rntis()) {
      connected += testbed.enb(e).data_plane->ue(rnti)->connected() ? 1 : 0;
    }
  }
  EXPECT_EQ(connected, kAgents * kUesPerAgent);
  // The master's updater kept pace with 10 agents' reporting.
  EXPECT_LT(testbed.master().pending_updates(), 50u);
  std::fprintf(stderr, "idle_fraction=%.3f updater_us=%.1f apps_us=%.1f\n",
               testbed.master().task_manager().mean_idle_fraction(),
               testbed.master().task_manager().updater_time_us().mean(),
               testbed.master().task_manager().apps_time_us().mean());
#if !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
  // Wall-clock budget; meaningless under sanitizer instrumentation
  // slowdown (~10x on the updater slot), where bookkeeping eats the
  // 1 ms cycle. Uninstrumented, the margin is wide (idle ~0.94).
  EXPECT_GT(testbed.master().task_manager().mean_idle_fraction(), 0.5);
#endif
}

}  // namespace
}  // namespace flexran
