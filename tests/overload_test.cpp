// Overload protection (docs/overload_protection.md): the bounded
// class-aware queue, the sliding-window overload watchdog, and the
// end-to-end graceful-degradation contract -- a report flood sheds only
// statistics (never commands or session traffic), queue memory stays
// bounded, report periods are throttled, and everything recovers when the
// flood clears.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "agent/reports.h"
#include "controller/overload.h"
#include "net/flow_control.h"
#include "scenario/fault_injector.h"
#include "scenario/testbed.h"

namespace flexran {
namespace {

using net::ClassedQueue;
using net::QueueBudget;
using net::TrafficClass;
using ctrl::OverloadConfig;
using ctrl::OverloadMonitor;
using ctrl::OverloadSample;
using ctrl::OverloadState;

// ------------------------------------------------------------ ClassedQueue --

TEST(ClassedQueue, WithoutBudgetBehavesLikePlainFifo) {
  ClassedQueue<int> queue;
  // Same coalesce key twice: without a budget nothing coalesces.
  EXPECT_TRUE(queue.push(TrafficClass::stats, 100, /*coalesce_key=*/7, 1));
  EXPECT_TRUE(queue.push(TrafficClass::command, 50, 0, 2));
  EXPECT_TRUE(queue.push(TrafficClass::stats, 100, /*coalesce_key=*/7, 3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.bytes(), 250u);
  EXPECT_EQ(queue.total_shed(), 0u);
  EXPECT_EQ(queue.total_coalesced(), 0u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(ClassedQueue, ShedsLowestClassFirstNeverCommands) {
  ClassedQueue<int> queue;
  queue.set_budget({/*max_messages=*/3, /*max_bytes=*/0});
  EXPECT_TRUE(queue.push(TrafficClass::command, 10, 0, 1));
  EXPECT_TRUE(queue.push(TrafficClass::event, 10, 0, 2));
  EXPECT_TRUE(queue.push(TrafficClass::sync, 10, 0, 3));
  // Over budget: stats is the lowest class present -> it goes first, even
  // though it is the entry just pushed.
  EXPECT_FALSE(queue.push(TrafficClass::stats, 10, 0, 4));
  EXPECT_EQ(queue.counters(TrafficClass::stats).shed, 1u);
  // Next overflow (a command) sheds sync before event.
  EXPECT_TRUE(queue.push(TrafficClass::command, 10, 0, 5));
  EXPECT_EQ(queue.counters(TrafficClass::sync).shed, 1u);
  EXPECT_TRUE(queue.push(TrafficClass::command, 10, 0, 6));
  EXPECT_EQ(queue.counters(TrafficClass::event).shed, 1u);
  // Only unsheddable traffic left: admitted past the budget, counted.
  EXPECT_TRUE(queue.push(TrafficClass::session, 10, 0, 7));
  EXPECT_EQ(queue.budget_overflows(), 1u);
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.counters(TrafficClass::command).shed, 0u);
  EXPECT_EQ(queue.counters(TrafficClass::session).shed, 0u);
  // Drain order stays FIFO among the survivors.
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 5);
  EXPECT_EQ(queue.pop(), 6);
  EXPECT_EQ(queue.pop(), 7);
}

TEST(ClassedQueue, CoalescesSupersededEntriesInPlace) {
  ClassedQueue<int> queue;
  queue.set_budget({/*max_messages=*/10, /*max_bytes=*/0});
  EXPECT_TRUE(queue.push(TrafficClass::stats, 100, /*coalesce_key=*/42, 1));
  EXPECT_TRUE(queue.push(TrafficClass::command, 20, 0, 2));
  // Supersedes key 42: newest payload and byte count, original position.
  EXPECT_TRUE(queue.push(TrafficClass::stats, 140, /*coalesce_key=*/42, 3));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.bytes(), 160u);
  EXPECT_EQ(queue.counters(TrafficClass::stats).coalesced, 1u);
  EXPECT_EQ(queue.pop(), 3);  // still ahead of the command
  EXPECT_EQ(queue.pop(), 2);
  // The key is released on pop: a new push with it queues fresh.
  EXPECT_TRUE(queue.push(TrafficClass::stats, 10, /*coalesce_key=*/42, 4));
  EXPECT_EQ(queue.size(), 1u);
}

TEST(ClassedQueue, ByteBudgetShedsToo) {
  ClassedQueue<int> queue;
  queue.set_budget({/*max_messages=*/0, /*max_bytes=*/250});
  EXPECT_TRUE(queue.push(TrafficClass::stats, 100, 0, 1));
  EXPECT_TRUE(queue.push(TrafficClass::command, 100, 0, 2));
  // 300 bytes > 250: the oldest stats entry is shed, push survives.
  EXPECT_TRUE(queue.push(TrafficClass::stats, 100, 0, 3));
  EXPECT_EQ(queue.bytes(), 200u);
  EXPECT_EQ(queue.counters(TrafficClass::stats).shed, 1u);
  EXPECT_EQ(queue.counters(TrafficClass::stats).shed_bytes, 100u);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(ClassedQueue, RemoveIfDropsMatchingAndReleasesKeys) {
  ClassedQueue<int> queue;
  queue.set_budget({/*max_messages=*/10, /*max_bytes=*/0});
  queue.push(TrafficClass::stats, 10, /*coalesce_key=*/1, 10);
  queue.push(TrafficClass::stats, 10, /*coalesce_key=*/2, 20);
  queue.push(TrafficClass::command, 10, 0, 30);
  EXPECT_EQ(queue.remove_if([](int v) { return v < 30; }), 2u);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.bytes(), 10u);
  // Keys released by remove_if: pushing key 1 again must not coalesce into
  // a dangling iterator.
  EXPECT_TRUE(queue.push(TrafficClass::stats, 10, /*coalesce_key=*/1, 40));
  EXPECT_EQ(queue.pop(), 30);
  EXPECT_EQ(queue.pop(), 40);
}

TEST(ClassedQueue, TracksPeaks) {
  ClassedQueue<int> queue;
  queue.set_budget({/*max_messages=*/4, /*max_bytes=*/0});
  for (int i = 0; i < 8; ++i) queue.push(TrafficClass::stats, 25, 0, i);
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_EQ(queue.peak_messages(), 4u);
  EXPECT_EQ(queue.peak_bytes(), 100u);
  EXPECT_EQ(queue.total_shed(), 4u);
}

// ---------------------------------------------------------- OverloadMonitor --

OverloadConfig small_monitor_config() {
  OverloadConfig config;
  config.window_cycles = 4;
  config.recovery_cycles = 3;
  return config;
}

TEST(OverloadMonitor, EscalatesImmediatelyOnShed) {
  OverloadMonitor monitor(small_monitor_config());
  EXPECT_FALSE(monitor.observe({0.1, 0, false}));
  EXPECT_EQ(monitor.state(), OverloadState::normal);
  EXPECT_TRUE(monitor.observe({0.1, /*shed_delta=*/5, false}));
  EXPECT_EQ(monitor.state(), OverloadState::critical);
  EXPECT_EQ(monitor.transitions(), 1u);
}

TEST(OverloadMonitor, DepthAndSaturationWatermarks) {
  OverloadMonitor monitor(small_monitor_config());
  EXPECT_TRUE(monitor.observe({0.6, 0, false}));  // >= elevated watermark
  EXPECT_EQ(monitor.state(), OverloadState::elevated);
  EXPECT_TRUE(monitor.observe({0.9, 0, false}));  // >= critical watermark
  EXPECT_EQ(monitor.state(), OverloadState::critical);

  OverloadMonitor saturated(small_monitor_config());
  EXPECT_TRUE(saturated.observe({0.0, 0, /*updater_saturated=*/true}));
  EXPECT_EQ(saturated.state(), OverloadState::elevated);
}

TEST(OverloadMonitor, DeEscalatesOneLevelPerRecoveryRun) {
  OverloadMonitor monitor(small_monitor_config());
  ASSERT_TRUE(monitor.observe({0.0, 10, false}));
  ASSERT_EQ(monitor.state(), OverloadState::critical);
  // Clean cycles age the bad sample out of the window (4 cycles), then
  // each full recovery run (3 clean cycles) steps down one level.
  int observed = 0;
  while (monitor.state() == OverloadState::critical && observed < 32) {
    monitor.observe({0.0, 0, false});
    ++observed;
  }
  EXPECT_EQ(monitor.state(), OverloadState::elevated);
  while (monitor.state() == OverloadState::elevated && observed < 32) {
    monitor.observe({0.0, 0, false});
    ++observed;
  }
  EXPECT_EQ(monitor.state(), OverloadState::normal);
  EXPECT_EQ(monitor.transitions(), 3u);
  // A dirty cycle resets the clean run but does not re-escalate by itself
  // once the window is clean.
  monitor.observe({0.2, 0, false});
  EXPECT_EQ(monitor.state(), OverloadState::normal);
}

// ------------------------------------------------------------- end-to-end ---

scenario::EnbSpec overload_spec(lte::EnbId id = 1) {
  scenario::EnbSpec spec;
  spec.enb.enb_id = id;
  spec.enb.cells[0].cell_id = id;
  spec.agent.name = "ovl-" + std::to_string(id);
  return spec;
}

stack::UeProfile fixed_ue(int cqi, std::int64_t attach_after = 1) {
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  profile.attach_after_ttis = attach_after;
  return profile;
}

void flood_reports(scenario::Testbed::Enb& enb, int count) {
  const std::int64_t now_sf = enb.agent->api().current_subframe();
  for (int i = 0; i < count; ++i) {
    proto::StatsRequest request;
    request.request_id = 0xF1000000u + static_cast<std::uint32_t>(i);
    request.mode = proto::ReportMode::periodic;
    request.periodicity_ttis = 1;
    request.flags = proto::stats_flags::kAll;
    enb.agent->reports().register_request(request, now_sf);
  }
}

void clear_flood(scenario::Testbed::Enb& enb, int count) {
  for (int i = 0; i < count; ++i) {
    enb.agent->reports().cancel_request(0xF1000000u + static_cast<std::uint32_t>(i));
  }
}

TEST(OverloadEndToEnd, DisabledBudgetIsInert) {
  scenario::Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(overload_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(100);
  flood_reports(enb, 40);
  testbed.run_ttis(500);
  // Seed behavior: everything is admitted and applied, nothing shed or
  // throttled, no state machine movement.
  EXPECT_EQ(testbed.master().ingest_shed(), 0u);
  EXPECT_EQ(testbed.master().overload_transitions(), 0u);
  EXPECT_EQ(testbed.master().overload_state(), OverloadState::normal);
  EXPECT_EQ(testbed.master().throttle_multiplier(), 1u);
  EXPECT_EQ(enb.agent->reports().throttle(), 1u);
}

TEST(OverloadEndToEnd, FloodShedsOnlyStatsAndStaysBounded) {
  ctrl::MasterConfig config = scenario::per_tti_master_config(/*stats_period_ttis=*/2);
  config.overload.ingest.max_messages = 24;
  config.overload.ingest.max_bytes = 16384;
  scenario::Testbed testbed(std::move(config));
  auto& enb = testbed.add_enb(overload_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(200);

  flood_reports(enb, 60);
  testbed.run_ttis(1000);

  auto& master = testbed.master();
  // Statistics gave way...
  EXPECT_GT(master.ingest_shed(), 0u);
  EXPECT_GT(master.ingest_counters(TrafficClass::stats).shed, 0u);
  // ...but the protected classes never did, and nothing overflowed the
  // budget.
  EXPECT_EQ(master.ingest_counters(TrafficClass::session).shed, 0u);
  EXPECT_EQ(master.ingest_counters(TrafficClass::command).shed, 0u);
  EXPECT_EQ(master.ingest_counters(TrafficClass::config).shed, 0u);
  EXPECT_EQ(master.ingest_budget_overflows(), 0u);
  // Queue memory bounded by the configured budget.
  EXPECT_LE(master.pending_peak_messages(), 24u);
  EXPECT_LE(master.pending_peak_bytes(), 16384u);
  // The watchdog reacted and the throttle engaged; the agent picked the
  // multiplier up from the envelope hint.
  EXPECT_GT(master.overload_transitions(), 0u);
  EXPECT_EQ(master.overload_state(), OverloadState::critical);
  EXPECT_GT(master.throttle_multiplier(), 1u);
  EXPECT_EQ(enb.agent->reports().throttle(), master.throttle_multiplier());
}

TEST(OverloadEndToEnd, RecoversAfterFloodClears) {
  ctrl::MasterConfig config = scenario::per_tti_master_config(/*stats_period_ttis=*/2);
  config.overload.ingest.max_messages = 24;
  config.overload.ingest.max_bytes = 16384;
  scenario::Testbed testbed(std::move(config));
  auto& enb = testbed.add_enb(overload_spec());
  testbed.add_ue(0, fixed_ue(12));
  testbed.run_ttis(200);

  flood_reports(enb, 60);
  testbed.run_ttis(800);
  ASSERT_GT(testbed.master().overload_transitions(), 0u);

  clear_flood(enb, 60);
  // recovery_cycles=100 per level plus window aging: well within 2 s.
  testbed.run_ttis(2000);

  auto& master = testbed.master();
  EXPECT_EQ(master.overload_state(), OverloadState::normal);
  EXPECT_EQ(master.throttle_multiplier(), 1u);
  // The un-stamped envelope hint restores the agent to full rate.
  EXPECT_EQ(enb.agent->reports().throttle(), 1u);
  // RIB freshness is back: the last synced subframe tracks the TTI.
  const auto* node = master.rib().find_agent(enb.agent_id);
  ASSERT_NE(node, nullptr);
  EXPECT_GE(node->last_subframe, testbed.current_tti() - 20);
}

TEST(OverloadEndToEnd, ReportFloodFaultInjectsAndCancels) {
  ctrl::MasterConfig config = scenario::per_tti_master_config(/*stats_period_ttis=*/2);
  config.overload.ingest.max_messages = 24;
  scenario::Testbed testbed(std::move(config));
  auto& enb = testbed.add_enb(overload_spec());
  testbed.add_ue(0, fixed_ue(12));

  scenario::FaultInjector injector(testbed);
  scenario::FaultEvent flood;
  flood.at_s = 0.2;
  flood.kind = scenario::FaultKind::report_flood;
  flood.count = 50;
  flood.duration_s = 0.5;
  injector.schedule(flood);

  testbed.run_seconds(0.4);
  EXPECT_GE(enb.agent->reports().active_registrations(), 50u);
  testbed.run_seconds(0.6);
  // Flood cancelled after duration_s: only the master's own registrations
  // remain.
  EXPECT_LT(enb.agent->reports().active_registrations(), 50u);
  EXPECT_EQ(injector.faults_injected(), 1u);
  EXPECT_GT(testbed.master().ingest_shed(), 0u);
}

}  // namespace
}  // namespace flexran
