// Property-based tests: randomized round-trips and invariants that must
// hold across the whole parameter space, not just hand-picked examples.
#include <gtest/gtest.h>

#include "agent/schedulers.h"
#include "proto/messages.h"
#include "stack/enodeb.h"
#include "stack/rlc.h"
#include "util/rng.h"

namespace flexran {
namespace {

// ------------------------------------------------- protocol round-trips ----

/// Random-but-valid StatsReply; the encode->decode->encode fixpoint must
/// hold for arbitrary field contents.
proto::StatsReply random_stats_reply(util::Rng& rng) {
  proto::StatsReply reply;
  reply.request_id = static_cast<std::uint32_t>(rng());
  reply.subframe = rng.uniform_int(0, 1'000'000'000);
  const auto n_ues = rng.uniform_int(0, 40);
  for (int i = 0; i < n_ues; ++i) {
    proto::UeStatsReport ue;
    ue.rnti = static_cast<lte::Rnti>(rng.uniform_int(1, 65535));
    for (auto& bsr : ue.bsr_bytes) bsr = static_cast<std::uint32_t>(rng() % 1'000'000);
    ue.phr_db = static_cast<std::int32_t>(rng.uniform_int(-23, 40));
    ue.wb_cqi = static_cast<std::uint8_t>(rng.uniform_int(0, 15));
    ue.wb_cqi_protected = static_cast<std::uint8_t>(rng.uniform_int(0, 15));
    ue.rlc_queue_bytes = static_cast<std::uint32_t>(rng() % 10'000'000);
    ue.pending_harq = static_cast<std::uint32_t>(rng.uniform_int(0, 8));
    ue.dl_bytes_delivered = rng();
    ue.ul_bytes_received = rng();
    const auto n_rsrp = rng.uniform_int(0, 4);
    for (int r = 0; r < n_rsrp; ++r) {
      ue.rsrp.push_back({static_cast<lte::CellId>(rng.uniform_int(1, 100)),
                         rng.uniform(-140.0, -40.0)});
    }
    reply.ue_reports.push_back(ue);
  }
  if (rng.chance(0.7)) {
    proto::CellStatsReport cell;
    cell.cell_id = static_cast<lte::CellId>(rng.uniform_int(1, 100));
    cell.noise_interference_dbm = rng.uniform(-120.0, -80.0);
    cell.dl_prbs_in_use = static_cast<std::uint32_t>(rng.uniform_int(0, 100));
    cell.ul_prbs_in_use = static_cast<std::uint32_t>(rng.uniform_int(0, 100));
    cell.active_ues = static_cast<std::uint32_t>(rng.uniform_int(0, 64));
    reply.cell_reports.push_back(cell);
  }
  return reply;
}

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty, ::testing::Range<std::uint64_t>(1, 21));

TEST_P(CodecProperty, StatsReplyEncodeDecodeFixpoint) {
  util::Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    const auto original = random_stats_reply(rng);
    const auto wire = proto::pack(original, static_cast<std::uint32_t>(rng()));
    auto envelope = proto::Envelope::decode(wire);
    ASSERT_TRUE(envelope.ok());
    auto decoded = proto::unpack<proto::StatsReply>(*envelope);
    ASSERT_TRUE(decoded.ok());
    // Re-encoding the decoded message must produce identical bytes.
    EXPECT_EQ(proto::pack(*decoded, envelope->xid), wire);
    ASSERT_EQ(decoded->ue_reports.size(), original.ue_reports.size());
    for (std::size_t i = 0; i < original.ue_reports.size(); ++i) {
      EXPECT_EQ(decoded->ue_reports[i].rnti, original.ue_reports[i].rnti);
      EXPECT_EQ(decoded->ue_reports[i].dl_bytes_delivered,
                original.ue_reports[i].dl_bytes_delivered);
      ASSERT_EQ(decoded->ue_reports[i].rsrp.size(), original.ue_reports[i].rsrp.size());
    }
  }
}

TEST_P(CodecProperty, DlMacConfigFixpoint) {
  util::Rng rng(GetParam() * 977);
  for (int iter = 0; iter < 20; ++iter) {
    proto::DlMacConfig config;
    config.cell_id = static_cast<lte::CellId>(rng.uniform_int(1, 1000));
    config.target_subframe = rng.uniform_int(0, 1'000'000'000);
    const auto n = rng.uniform_int(0, 16);
    for (int i = 0; i < n; ++i) {
      lte::DlDci dci;
      dci.rnti = static_cast<lte::Rnti>(rng.uniform_int(1, 65535));
      const int first = static_cast<int>(rng.uniform_int(0, 90));
      dci.rbs.set_range(first, static_cast<int>(rng.uniform_int(1, 100 - first)));
      dci.mcs = static_cast<int>(rng.uniform_int(0, 28));
      dci.harq_pid = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
      dci.new_data = rng.chance(0.5);
      config.dcis.push_back(dci);
    }
    const auto wire = proto::pack(config);
    auto decoded = proto::unpack<proto::DlMacConfig>(proto::Envelope::decode(wire).value());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(proto::pack(*decoded), wire);
    for (std::size_t i = 0; i < config.dcis.size(); ++i) {
      EXPECT_EQ(decoded->dcis[i].rbs, config.dcis[i].rbs);
    }
  }
}

TEST_P(CodecProperty, DecoderNeverCrashesOnMutatedBytes) {
  util::Rng rng(GetParam() * 31337);
  const auto reply = random_stats_reply(rng);
  auto wire = proto::pack(reply);
  for (int iter = 0; iter < 200; ++iter) {
    auto corrupted = wire;
    const auto flips = rng.uniform_int(1, 8);
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng() % corrupted.size());
      corrupted[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    // Must never crash; may fail or succeed with different content.
    auto envelope = proto::Envelope::decode(corrupted);
    if (envelope.ok() && envelope->type == proto::MessageType::stats_reply) {
      (void)proto::unpack<proto::StatsReply>(*envelope);
    }
  }
}

// --------------------------------------------------------- RLC conservation --

class RlcProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RlcProperty, ::testing::Range<std::uint64_t>(1, 11));

TEST_P(RlcProperty, BytesAreConserved) {
  util::Rng rng(GetParam());
  stack::RlcQueue queue;
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  for (int step = 0; step < 2000; ++step) {
    if (rng.chance(0.6)) {
      const auto bytes = static_cast<std::uint32_t>(rng.uniform_int(1, 5000));
      const auto lcid = static_cast<lte::Lcid>(rng.uniform_int(0, 5));
      queue.enqueue(lcid, bytes);
      enqueued += bytes;
    } else {
      dequeued += queue.dequeue(rng.uniform_int(0, 60'000));
    }
    // Invariant: everything is either still queued or was dequeued.
    ASSERT_EQ(enqueued, dequeued + queue.total_bytes());
  }
  dequeued += queue.dequeue(1'000'000'000);
  dequeued += queue.dequeue(1'000'000'000);
  EXPECT_EQ(enqueued, dequeued);
  EXPECT_TRUE(queue.empty());
}

TEST_P(RlcProperty, BitsNeededIsSufficient) {
  util::Rng rng(GetParam() * 7);
  stack::RlcQueue queue;
  for (int i = 0; i < 20; ++i) {
    queue.enqueue(static_cast<lte::Lcid>(rng.uniform_int(0, 4)),
                  static_cast<std::uint32_t>(rng.uniform_int(1, 20'000)));
  }
  const auto total = queue.total_bytes();
  EXPECT_EQ(queue.dequeue(queue.bits_needed()), total);
  EXPECT_TRUE(queue.empty());
}

// ------------------------------------------------------ scheduler invariants --

struct SchedCase {
  int n_ues;
  int prbs_cap;  // 0 = no restriction
  std::uint64_t seed;
};

class SchedulerProperty : public ::testing::TestWithParam<SchedCase> {};
INSTANTIATE_TEST_SUITE_P(Grid, SchedulerProperty,
                         ::testing::Values(SchedCase{1, 0, 1}, SchedCase{4, 0, 2},
                                           SchedCase{16, 0, 3}, SchedCase{50, 0, 4},
                                           SchedCase{4, 30, 5}, SchedCase{16, 20, 6},
                                           SchedCase{50, 10, 7}, SchedCase{80, 0, 8}));

TEST_P(SchedulerProperty, DecisionsRespectBudgetAndNeverOverlap) {
  const auto param = GetParam();
  util::Rng rng(param.seed);
  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 1;
  config.cells[0].cell_id = 1;
  stack::EnodebDataPlane dp(simulator, config);
  agent::AgentApi api(dp);
  if (param.prbs_cap > 0) dp.restrict_dl_prbs(param.prbs_cap);

  std::vector<lte::Rnti> rntis;
  for (int i = 0; i < param.n_ues; ++i) {
    stack::UeProfile profile;
    profile.dl_channel =
        std::make_unique<phy::FixedCqiChannel>(static_cast<int>(rng.uniform_int(1, 15)));
    profile.attach_after_ttis = 0;
    rntis.push_back(dp.add_ue(std::move(profile)));
  }
  dp.subframe_begin(1);
  for (const auto rnti : rntis) {
    if (rng.chance(0.8)) {
      dp.enqueue_dl(rnti, lte::kDefaultDrb, static_cast<std::uint32_t>(rng.uniform_int(1, 50'000)));
    }
  }
  dp.subframe_begin(2);  // refresh CQI samples

  agent::RoundRobinDlVsf rr;
  agent::ProportionalFairDlVsf pf;
  for (int round = 0; round < 20; ++round) {
    for (agent::DlSchedulerVsf* scheduler :
         std::initializer_list<agent::DlSchedulerVsf*>{&rr, &pf}) {
      const auto decision = scheduler->schedule_dl(api, 2);
      lte::RbAllocation used;
      int total_prbs = 0;
      for (const auto& dci : decision.dl) {
        EXPECT_FALSE(dci.rbs.empty());
        EXPECT_FALSE(dci.rbs.overlaps(used)) << "overlapping grants";
        used.merge(dci.rbs);
        total_prbs += dci.rbs.count();
        EXPECT_GE(dci.mcs, 0);
        EXPECT_LE(dci.mcs, lte::kMaxMcs);
        EXPECT_LT(dci.rbs.highest_set(), api.dl_prbs()) << "grant in evacuated band";
      }
      EXPECT_LE(total_prbs, api.dl_prbs());
    }
  }
}

TEST_P(SchedulerProperty, DataPlaneAcceptsEveryGeneratedDecision) {
  const auto param = GetParam();
  util::Rng rng(param.seed * 13);
  sim::Simulator simulator;
  lte::EnbConfig config;
  config.enb_id = 1;
  config.cells[0].cell_id = 1;
  stack::EnodebDataPlane dp(simulator, config);
  agent::AgentApi api(dp);
  if (param.prbs_cap > 0) dp.restrict_dl_prbs(param.prbs_cap);

  for (int i = 0; i < param.n_ues; ++i) {
    stack::UeProfile profile;
    profile.dl_channel =
        std::make_unique<phy::FixedCqiChannel>(static_cast<int>(rng.uniform_int(1, 15)));
    profile.attach_after_ttis = 0;
    dp.add_ue(std::move(profile));
  }

  agent::RoundRobinDlVsf rr;
  for (std::int64_t sf = 1; sf <= 50; ++sf) {
    simulator.run_until(sf * sim::kTtiUs);
    dp.subframe_begin(sf);
    for (const auto rnti : dp.ue_rntis()) {
      if (rng.chance(0.3)) {
        dp.enqueue_dl(rnti, lte::kDefaultDrb,
                      static_cast<std::uint32_t>(rng.uniform_int(100, 20'000)));
      }
    }
    auto decision = rr.schedule_dl(api, sf);
    const auto rejected_before = dp.grants_rejected();
    if (!decision.empty()) {
      ASSERT_TRUE(dp.apply_scheduling_decision(decision).ok());
    }
    // A well-formed local decision must never be (even partially) rejected.
    EXPECT_EQ(dp.grants_rejected(), rejected_before);
    dp.subframe_end(sf);
  }
}

}  // namespace
}  // namespace flexran
