// Tests for the snapshot-based concurrent controller: versioned RIB
// snapshots (bit-stability, structural sharing), snapshot-backed analytics
// parity, deterministic batched command flushing, priority-tier execution
// on the worker pool, deferred app removal/pausing, and an end-to-end
// pipelined master run. See docs/controller_concurrency.md.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "apps/monitoring.h"
#include "apps/remote_scheduler.h"
#include "controller/master.h"
#include "controller/rib_snapshot.h"
#include "controller/rib_view.h"
#include "controller/task_manager.h"
#include "scenario/testbed.h"

namespace flexran::ctrl {
namespace {

using scenario::Testbed;

// ------------------------------------------------------------ RibSnapshot --

Rib make_rib() {
  Rib rib;
  for (AgentId id = 1; id <= 3; ++id) {
    AgentNode& agent = rib.agent(id);
    agent.id = id;
    agent.enb_id = id;
    auto& cell = agent.cells[id];
    cell.config.bandwidth_mhz = 10.0;  // 50 PRBs
    cell.stats.dl_prbs_in_use = 10 * static_cast<int>(id);
    cell.stats.active_ues = 2;
    for (lte::Rnti rnti = 70; rnti < 72; ++rnti) {
      auto& ue = cell.ues[rnti];
      ue.rnti = rnti;
      ue.stats.wb_cqi = 9;
      ue.stats.dl_bytes_delivered = 1000 * id;
      ue.cqi_avg.add(9.0);
    }
  }
  return rib;
}

TEST(RibSnapshot, BitStableWhileUpdaterMutates) {
  Rib rib = make_rib();
  SnapshotStore store;
  auto v1 = store.publish(rib, {1, 2, 3}, /*structure_changed=*/true);
  ASSERT_EQ(v1->version(), 1u);
  ASSERT_EQ(v1->agent_count(), 3u);

  // The updater keeps mutating the live tree...
  rib.agent(1).cells[1].ues[70].stats.wb_cqi = 2;
  rib.agent(1).cells[1].ues[70].stats.dl_bytes_delivered = 999999;
  rib.agent(2).cells[2].ues.erase(70);
  rib.remove_agent(3);
  rib.agent(1).last_subframe = 4242;

  // ...and the held snapshot does not move.
  EXPECT_EQ(v1->find_ue(1, 70)->stats.wb_cqi, 9);
  EXPECT_EQ(v1->find_ue(1, 70)->stats.dl_bytes_delivered, 1000u);
  EXPECT_NE(v1->find_ue(2, 70), nullptr);
  EXPECT_NE(v1->find_agent(3), nullptr);
  EXPECT_EQ(v1->find_agent(1)->last_subframe, 0);
  EXPECT_EQ(v1->ue_count(), 6u);

  // The next publish sees the mutations; the old version still does not.
  auto v2 = store.publish(rib, {1, 2}, /*structure_changed=*/true);
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_EQ(v2->find_ue(1, 70)->stats.wb_cqi, 2);
  EXPECT_EQ(v2->find_agent(3), nullptr);
  EXPECT_EQ(v1->find_ue(1, 70)->stats.wb_cqi, 9);
  EXPECT_EQ(v1->agent_count(), 3u);
}

TEST(RibSnapshot, SharesUnchangedSubtreesAndSkipsNoopPublishes) {
  Rib rib = make_rib();
  SnapshotStore store;
  auto v1 = store.publish(rib, {1, 2, 3}, true);

  // Nothing dirty: the same snapshot is re-published, version unchanged.
  auto same = store.publish(rib, {}, false);
  EXPECT_EQ(same.get(), v1.get());
  EXPECT_EQ(store.current()->version(), 1u);

  // Only agent 1 dirty: agents 2 and 3 are carried by the same nodes
  // (structural sharing), agent 1 is deep-copied.
  rib.agent(1).last_subframe = 100;
  auto v2 = store.publish(rib, {1}, false);
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_NE(v2->agents().at(1).get(), v1->agents().at(1).get());
  EXPECT_EQ(v2->agents().at(2).get(), v1->agents().at(2).get());
  EXPECT_EQ(v2->agents().at(3).get(), v1->agents().at(3).get());
  EXPECT_EQ(v2->find_agent(1)->last_subframe, 100);
}

TEST(RibSnapshot, CurrentIsConsistentUnderConcurrentPublish) {
  Rib rib = make_rib();
  SnapshotStore store;
  store.publish(rib, {1, 2, 3}, true);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> last_seen{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto snapshot = store.current();
      // Monotonic versions and internally consistent trees.
      ASSERT_GE(snapshot->version(), last_seen.load());
      last_seen.store(snapshot->version());
      ASSERT_EQ(snapshot->agent_count(), 3u);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    rib.agent(1).last_subframe = i;
    store.publish(rib, {1}, false);
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(store.current()->version(), 2001u);
}

// ------------------------------------------------- snapshot-backed views ---

TEST(RibViewSnapshot, AnalyticsOverSnapshotMatchesLiveRib) {
  Rib rib = make_rib();
  RibAnalytics live;
  RibAnalytics snap;

  live.sample(rib, 0);
  snap.sample(*RibSnapshot::capture(rib), 0);

  for (AgentId id = 1; id <= 3; ++id) {
    for (lte::Rnti rnti = 70; rnti < 72; ++rnti) {
      rib.agent(id).cells[id].ues[rnti].stats.dl_bytes_delivered += 125000;  // 1 Mb
    }
  }
  const sim::TimeUs t1 = sim::from_seconds(1.0);
  live.sample(rib, t1);
  snap.sample(*RibSnapshot::capture(rib), t1);

  for (AgentId id = 1; id <= 3; ++id) {
    for (lte::Rnti rnti = 70; rnti < 72; ++rnti) {
      EXPECT_DOUBLE_EQ(snap.ue_dl_rate_mbps(id, rnti), live.ue_dl_rate_mbps(id, rnti));
      EXPECT_GT(snap.ue_dl_rate_mbps(id, rnti), 0.0);
    }
    EXPECT_DOUBLE_EQ(snap.cell_utilization(id, id), live.cell_utilization(id, id));
  }

  const auto live_summaries = summarize_ues(rib);
  const auto snap_summaries = summarize_ues(*RibSnapshot::capture(rib));
  ASSERT_EQ(snap_summaries.size(), live_summaries.size());
  for (std::size_t i = 0; i < live_summaries.size(); ++i) {
    EXPECT_EQ(snap_summaries[i].agent, live_summaries[i].agent);
    EXPECT_EQ(snap_summaries[i].rnti, live_summaries[i].rnti);
    EXPECT_EQ(snap_summaries[i].dl_bytes_delivered, live_summaries[i].dl_bytes_delivered);
  }
  EXPECT_EQ(least_loaded_agent(*RibSnapshot::capture(rib)), least_loaded_agent(rib));
}

// ------------------------------------------------------ batched commands ---

/// Records every command that reaches the wire, in order.
class RecordingNorthbound : public NorthboundApi {
 public:
  explicit RecordingNorthbound(SnapshotStore& store) : store_(&store) {}

  std::vector<std::string> log;

  std::shared_ptr<const RibSnapshot> rib_snapshot() const override { return store_->current(); }
  sim::TimeUs now() const override { return 0; }
  std::int64_t agent_subframe(AgentId) const override { return 0; }
  util::Status send_dl_mac_config(AgentId, const proto::DlMacConfig&) override { return {}; }
  util::Status send_ul_mac_config(AgentId, const proto::UlMacConfig&) override { return {}; }
  util::Status send_handover(AgentId, const proto::HandoverCommand&) override { return {}; }
  util::Status send_abs_config(AgentId, const proto::AbsConfig&) override { return {}; }
  util::Status send_carrier_restriction(AgentId, const proto::CarrierRestriction&) override {
    return {};
  }
  util::Status send_drx_config(AgentId, const proto::DrxConfig&) override { return {}; }
  util::Status send_scell_command(AgentId, const proto::ScellCommand&) override { return {}; }
  util::Status request_stats(AgentId, const proto::StatsRequest&) override { return {}; }
  util::Status subscribe_events(AgentId, std::vector<proto::EventType>, bool) override {
    return {};
  }
  util::Status push_vsf(AgentId, const std::string&, const std::string&,
                        const std::string&) override {
    return {};
  }
  util::Status send_policy(AgentId, const std::string& yaml) override {
    log.push_back(yaml);
    return {};
  }

 private:
  SnapshotStore* store_;
};

/// Issues tagged commands each cycle, optionally after a delay (to scramble
/// worker completion order).
class ChattyApp : public App {
 public:
  ChattyApp(std::string name, int priority, std::chrono::microseconds delay)
      : name_(std::move(name)), priority_(priority), delay_(delay) {}
  std::string_view name() const override { return name_; }
  int priority() const override { return priority_; }
  void on_cycle(std::int64_t cycle, NorthboundApi& api) override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    (void)api.send_policy(1, name_ + "#" + std::to_string(cycle) + "/a");
    (void)api.send_policy(1, name_ + "#" + std::to_string(cycle) + "/b");
  }

 private:
  std::string name_;
  int priority_;
  std::chrono::microseconds delay_;
};

std::vector<std::string> run_chatty_cycles(int workers, int cycles) {
  Rib rib = make_rib();
  SnapshotStore store;
  RecordingNorthbound api(store);

  TaskManagerConfig config;
  config.real_time = false;
  config.workers = workers;
  TaskManager tm(config, [&](std::int64_t) {
    store.publish(rib, {1}, rib.agent_count() != store.current()->agent_count());
    return std::size_t{0};
  }, nullptr);
  tm.set_snapshot_source([&] { return store.current(); }, [] { return sim::TimeUs{0}; });

  // "slow" registers first within the time-critical tier but finishes last;
  // the flush order must not care.
  ChattyApp slow("slow", 1, std::chrono::microseconds(1500));
  ChattyApp fast("fast", 1, std::chrono::microseconds(0));
  ChattyApp late("late", 200, std::chrono::microseconds(0));
  tm.add_app(&slow, api);
  tm.add_app(&fast, api);
  tm.add_app(&late, api);
  for (int cycle = 0; cycle < cycles; ++cycle) tm.run_cycle(cycle, api);
  tm.quiesce();
  return api.log;
}

TEST(CommandBatch, FlushOrderIsDeterministicAcrossRunsAndWorkerCounts) {
  constexpr int kCycles = 6;
  const auto inline_log = run_chatty_cycles(/*workers=*/0, kCycles);
  ASSERT_EQ(inline_log.size(), 3u * 2u * kCycles);
  // Within a cycle: priority order, then registration order, then enqueue
  // order -- independent of which worker finished first.
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const auto base = static_cast<std::size_t>(cycle) * 6;
    const std::string tag = "#" + std::to_string(cycle);
    EXPECT_EQ(inline_log[base + 0], "slow" + tag + "/a");
    EXPECT_EQ(inline_log[base + 1], "slow" + tag + "/b");
    EXPECT_EQ(inline_log[base + 2], "fast" + tag + "/a");
    EXPECT_EQ(inline_log[base + 3], "fast" + tag + "/b");
    EXPECT_EQ(inline_log[base + 4], "late" + tag + "/a");
    EXPECT_EQ(inline_log[base + 5], "late" + tag + "/b");
  }
  // Parallel execution (2 and 4 workers) must produce the identical wire
  // sequence, run after run.
  EXPECT_EQ(run_chatty_cycles(/*workers=*/2, kCycles), inline_log);
  EXPECT_EQ(run_chatty_cycles(/*workers=*/4, kCycles), inline_log);
  EXPECT_EQ(run_chatty_cycles(/*workers=*/4, kCycles), inline_log);
}

TEST(CommandBatch, EnqueueValidatesAgainstPinnedSnapshot) {
  Rib rib = make_rib();
  SnapshotStore store;
  store.publish(rib, {1, 2, 3}, true);
  RecordingNorthbound api(store);
  BatchingNorthbound proxy(api);

  proxy.pin(store.current(), 0);
  EXPECT_TRUE(proxy.send_policy(1, "known").ok());
  auto unknown = proxy.send_policy(99, "unknown");
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(proxy.queued(), 1u);
  EXPECT_TRUE(api.log.empty());  // nothing on the wire until flush
  EXPECT_EQ(proxy.flush(), 1u);
  ASSERT_EQ(api.log.size(), 1u);
  EXPECT_EQ(api.log[0], "known");

  // Unpinned: commands pass straight through.
  EXPECT_TRUE(proxy.send_policy(1, "direct").ok());
  EXPECT_EQ(api.log.size(), 2u);
}

// ------------------------------------------------------------ worker pool ---

class TierProbeApp : public App {
 public:
  TierProbeApp(std::string name, int priority, std::atomic<int>& finished_above,
               std::atomic<bool>& violated, bool is_high_tier)
      : name_(std::move(name)),
        priority_(priority),
        finished_above_(&finished_above),
        violated_(&violated),
        is_high_tier_(is_high_tier) {}
  std::string_view name() const override { return name_; }
  int priority() const override { return priority_; }
  void on_cycle(std::int64_t, NorthboundApi&) override {
    if (is_high_tier_) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      finished_above_->fetch_add(1);
    } else if (finished_above_->load() != 2) {
      // A low-priority app started before the whole tier above completed.
      violated_->store(true);
    }
  }

 private:
  std::string name_;
  int priority_;
  std::atomic<int>* finished_above_;
  std::atomic<bool>* violated_;
  bool is_high_tier_;
};

TEST(TaskManagerPool, LowerTierWaitsForHigherTier) {
  Rib rib = make_rib();
  SnapshotStore store;
  RecordingNorthbound api(store);
  TaskManagerConfig config;
  config.real_time = false;
  config.workers = 4;
  TaskManager tm(config, [&](std::int64_t) {
    store.publish(rib, {1}, store.current()->agent_count() == 0);
    return std::size_t{0};
  }, nullptr);
  tm.set_snapshot_source([&] { return store.current(); }, [] { return sim::TimeUs{0}; });

  std::atomic<int> finished_above{0};
  std::atomic<bool> violated{false};
  TierProbeApp a("a", 1, finished_above, violated, true);
  TierProbeApp b("b", 1, finished_above, violated, true);
  TierProbeApp c("c", 200, finished_above, violated, false);
  TierProbeApp d("d", 200, finished_above, violated, false);
  tm.add_app(&a, api);
  tm.add_app(&b, api);
  tm.add_app(&c, api);
  tm.add_app(&d, api);

  for (int cycle = 0; cycle < 20; ++cycle) {
    finished_above.store(0);
    tm.run_cycle(cycle, api);
    tm.quiesce();  // one slot at a time so the per-cycle reset is race-free
  }
  EXPECT_FALSE(violated.load());
  // Per-app wall stats were recorded for every cycle.
  const auto stats = tm.app_stats();
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& stat : stats) EXPECT_EQ(stat.runs, 20u);
}

/// Removes a sibling app (and itself) mid-cycle; the seed mutated the app
/// vector during iteration (undefined behavior).
class SelfRemovingApp : public App {
 public:
  SelfRemovingApp(std::string name, TaskManager& tm, std::string victim)
      : name_(std::move(name)), tm_(&tm), victim_(std::move(victim)) {}
  std::string_view name() const override { return name_; }
  int priority() const override { return 1; }
  void on_cycle(std::int64_t, NorthboundApi&) override {
    ++runs_;
    tm_->remove_app(victim_);
    tm_->remove_app(name_);
  }
  int runs() const { return runs_; }

 private:
  std::string name_;
  TaskManager* tm_;
  std::string victim_;
  int runs_ = 0;
};

class CountingApp : public App {
 public:
  CountingApp(std::string name, int priority) : name_(std::move(name)), priority_(priority) {}
  std::string_view name() const override { return name_; }
  int priority() const override { return priority_; }
  void on_cycle(std::int64_t, NorthboundApi&) override { ++runs_; }
  int runs() const { return runs_; }

 private:
  std::string name_;
  int priority_;
  int runs_ = 0;
};

TEST(TaskManagerPool, RemoveDuringCycleIsDeferredToCycleBoundary) {
  SnapshotStore store;
  RecordingNorthbound api(store);
  TaskManager tm({.real_time = false}, nullptr, nullptr);

  SelfRemovingApp remover("remover", tm, "victim");
  CountingApp victim("victim", 300);  // scheduled after the remover
  tm.add_app(&remover, api);
  tm.add_app(&victim, api);
  ASSERT_EQ(tm.app_count(), 2u);

  // Cycle 0: the remover asks for both removals mid-cycle. The victim,
  // later in this cycle's schedule, must still run exactly once (the
  // working set is frozen at slot start), and both removals must land at
  // the cycle boundary instead of invalidating the iteration.
  tm.run_cycle(0, api);
  EXPECT_EQ(remover.runs(), 1);
  EXPECT_EQ(victim.runs(), 1);
  EXPECT_EQ(tm.app_count(), 0u);
  tm.run_cycle(1, api);
  EXPECT_EQ(remover.runs(), 1);
  EXPECT_EQ(victim.runs(), 1);
}

TEST(TaskManagerPool, RemoveWhileSlotInFlightWaitsForJoin) {
  Rib rib = make_rib();
  SnapshotStore store;
  RecordingNorthbound api(store);
  TaskManagerConfig config;
  config.real_time = false;
  config.workers = 2;
  TaskManager tm(config, [&](std::int64_t) {
    store.publish(rib, {1}, store.current()->agent_count() == 0);
    return std::size_t{0};
  }, nullptr);
  tm.set_snapshot_source([&] { return store.current(); }, [] { return sim::TimeUs{0}; });

  ChattyApp slow("slow", 1, std::chrono::microseconds(2000));
  tm.add_app(&slow, api);
  tm.run_cycle(0, api);  // dispatches the slot; workers are now running
  tm.remove_app("slow");  // in flight -> deferred, not torn out from under the worker
  EXPECT_EQ(tm.app_count(), 1u);
  tm.quiesce();  // joins, flushes, applies the deferral
  EXPECT_EQ(tm.app_count(), 0u);
  // Its final batch still made the wire.
  EXPECT_EQ(api.log.size(), 2u);
}

TEST(TaskManagerPool, PauseWhileRunningTakesEffectNextCycle) {
  SnapshotStore store;
  RecordingNorthbound api(store);
  TaskManager tm({.real_time = false}, nullptr, nullptr);
  CountingApp app("app", 10);
  tm.add_app(&app, api);
  tm.run_cycle(0, api);
  ASSERT_TRUE(tm.set_paused("app", true).ok());
  tm.run_cycle(1, api);
  EXPECT_EQ(app.runs(), 1);
  ASSERT_TRUE(tm.set_paused("app", false).ok());
  tm.run_cycle(2, api);
  EXPECT_EQ(app.runs(), 2);
}

// -------------------------------------------------------- end-to-end E2E ---

scenario::EnbSpec sched_spec(lte::EnbId id = 1) {
  scenario::EnbSpec s;
  s.enb.enb_id = id;
  s.enb.cells[0].cell_id = id;
  s.agent.name = "enb-" + std::to_string(id);
  s.agent.dl_scheduler = "remote";
  return s;
}

TEST(PipelinedMaster, EndToEndParallelCyclesServeTraffic) {
  auto config = scenario::per_tti_master_config();
  config.task_manager.workers = 2;
  Testbed testbed(config);
  testbed.add_enb(sched_spec());

  apps::RemoteSchedulerConfig sched_config;
  // Pipelined dispatch flushes a cycle's decisions one cycle later; keep a
  // comfortable schedule-ahead margin so they still arrive in time.
  sched_config.schedule_ahead_sf = 4;
  auto* scheduler = static_cast<apps::RemoteSchedulerApp*>(
      testbed.master().add_app(std::make_unique<apps::RemoteSchedulerApp>(sched_config)));
  auto* monitoring = static_cast<apps::MonitoringApp*>(
      testbed.master().add_app(std::make_unique<apps::MonitoringApp>(10)));

  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(12);
  profile.attach_after_ttis = 10;
  const auto rnti = testbed.add_ue(0, std::move(profile));
  // Keep the DL queue non-empty so the scheduler has per-TTI work.
  auto* dp = testbed.enb(0).data_plane.get();
  testbed.on_tti([&testbed, dp, rnti](std::int64_t) {
    const auto* ue = dp->ue(rnti);
    if (ue != nullptr && ue->dl_queue.total_bytes() < 60'000) {
      (void)testbed.epc().downlink(rnti, 60'000);
    }
  });

  testbed.run_ttis(500);
  testbed.master().quiesce();

  EXPECT_GT(scheduler->decisions_sent(), 100u);
  EXPECT_GT(testbed.master().commands_flushed(), 100u);
  EXPECT_GT(testbed.master().snapshot_version(), 100u);
  EXPECT_GT(testbed.master().snapshot_publish_us().count(), 400u);
  EXPECT_GE(monitoring->snapshots_taken(), 1);
  EXPECT_GT(testbed.metrics().total_bytes_all(lte::Direction::downlink), 100000u);
  ASSERT_NE(dp->ue(rnti), nullptr);
  EXPECT_TRUE(dp->ue(rnti)->connected());
  // Single-writer discipline held: per-app stats exist for both apps.
  const auto stats = testbed.master().task_manager().app_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "remote_scheduler");
}

}  // namespace
}  // namespace flexran::ctrl
