#include <gtest/gtest.h>

#include <cmath>

#include "util/bytes.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/yaml_lite.h"

namespace flexran::util {
namespace {

// ---------------------------------------------------------------- Result --

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Error::not_found("missing UE");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Error::Code::not_found);
  EXPECT_EQ(r.error().message, "missing UE");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, VoidSpecialization) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status bad = Error::timeout("deadline");
  EXPECT_FALSE(bad.ok());
  EXPECT_STREQ(to_string(bad.error().code), "timeout");
}

// --------------------------------------------------------------- Logging --

TEST(Logging, SinkReceivesEnabledLevelsOnly) {
  auto& logger = Logger::instance();
  const auto previous_level = logger.level();
  std::vector<std::string> lines;
  logger.set_sink([&](LogLevel level, std::string_view component, std::string_view message) {
    lines.push_back(std::string(to_string(level)) + "/" + std::string(component) + "/" +
                    std::string(message));
  });
  logger.set_level(LogLevel::warn);

  FLEXRAN_LOG(debug, "test") << "filtered " << 1;
  FLEXRAN_LOG(warn, "test") << "kept " << 2;
  FLEXRAN_LOG(error, "test") << "kept " << 3;

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "WARN/test/kept 2");
  EXPECT_EQ(lines[1], "ERROR/test/kept 3");

  logger.set_level(LogLevel::off);
  FLEXRAN_LOG(error, "test") << "suppressed";
  EXPECT_EQ(lines.size(), 2u);

  // Restore defaults for other tests.
  logger.set_sink(nullptr);
  logger.set_level(previous_level);
}

// ------------------------------------------------------------ ByteBuffer --

TEST(ByteBuffer, FixedWidthRoundTrip) {
  ByteBuffer buf;
  buf.write_u8(0xab);
  buf.write_u16(0x1234);
  buf.write_u32(0xdeadbeef);
  buf.write_u64(0x0102030405060708ull);
  buf.write_string("flexran");

  EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8 + 7);
  EXPECT_EQ(buf.read_u8().value(), 0xab);
  EXPECT_EQ(buf.read_u16().value(), 0x1234);
  EXPECT_EQ(buf.read_u32().value(), 0xdeadbeefu);
  EXPECT_EQ(buf.read_u64().value(), 0x0102030405060708ull);
  EXPECT_EQ(buf.read_string(7).value(), "flexran");
  EXPECT_EQ(buf.readable(), 0u);
}

TEST(ByteBuffer, ReadPastEndFails) {
  ByteBuffer buf;
  buf.write_u16(7);
  EXPECT_TRUE(buf.read_u32().ok() == false);
  // A failed fixed read must not consume bytes.
  EXPECT_EQ(buf.read_u16().value(), 7);
}

TEST(ByteBuffer, LittleEndianLayout) {
  ByteBuffer buf;
  buf.write_u32(0x01020304);
  const auto bytes = buf.contents();
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(ByteBuffer, CompactNowDropsConsumedPrefix) {
  ByteBuffer buf;
  buf.write_u32(1);
  buf.write_u32(2);
  ASSERT_EQ(buf.read_u32().value(), 1u);
  buf.compact_now();
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.read_u32().value(), 2u);
}

TEST(ByteBuffer, CompactIsAmortized) {
  // Small consumed prefixes are kept (no memmove per call)...
  ByteBuffer buf;
  buf.write_u32(1);
  buf.write_u32(2);
  ASSERT_EQ(buf.read_u32().value(), 1u);
  buf.compact();
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.readable(), 4u);
  // ...a fully drained buffer resets cheaply...
  ASSERT_EQ(buf.read_u32().value(), 2u);
  buf.compact();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.readable(), 0u);
  // ...and a prefix past the threshold is actually erased.
  const std::vector<std::uint8_t> block(kCompactThresholdBytes, 0xab);
  buf.write_bytes(block);
  buf.write_u32(3);
  ASSERT_TRUE(buf.read_bytes(kCompactThresholdBytes).ok());
  buf.compact();
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.read_u32().value(), 3u);
}

TEST(ByteBuffer, SeekRewindsAndInsertZerosWidens) {
  ByteBuffer buf;
  buf.write_u32(7);
  buf.write_u32(9);
  ASSERT_EQ(buf.read_u32().value(), 7u);
  const std::size_t mark = buf.read_position();
  ASSERT_EQ(buf.read_u32().value(), 9u);
  buf.seek(mark);
  EXPECT_EQ(buf.read_u32().value(), 9u);
  // insert_zeros opens a gap without disturbing surrounding bytes.
  ByteBuffer enc;
  enc.write_u8(0xaa);
  enc.write_u8(0xbb);
  enc.insert_zeros(1, 2);
  const auto bytes = enc.contents();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0xaa);
  EXPECT_EQ(bytes[1], 0);
  EXPECT_EQ(bytes[2], 0);
  EXPECT_EQ(bytes[3], 0xbb);
}

// ------------------------------------------------------------------- Rng --

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

// ----------------------------------------------------------------- Stats --

TEST(RunningStats, MomentsAndExtremes) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.5);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);  // first sample seeds
  for (int i = 0; i < 50; ++i) e.add(4.0);
  EXPECT_NEAR(e.value(), 4.0, 1e-6);
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(TimeSeries, WindowedMean) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(1.0, 2.0);
  ts.add(2.0, 3.0);
  ts.add(3.0, 10.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(0.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(ts.last_value(), 10.0);
}

TEST(Histogram, ClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-5.0);
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);
  EXPECT_EQ(h.buckets().front(), 2u);
  EXPECT_EQ(h.buckets().back(), 2u);
  EXPECT_EQ(h.count(), 4u);
}

// --------------------------------------------------------------- Strings --

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \n "), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, ParseNumbers) {
  long long i = 0;
  EXPECT_TRUE(parse_int(" 42 ", i));
  EXPECT_EQ(i, 42);
  EXPECT_FALSE(parse_int("4x", i));
  double d = 0;
  EXPECT_TRUE(parse_double("2.5", d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_FALSE(parse_double("", d));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 1.239), "1.24");
}

// ------------------------------------------------------------- YAML-lite --

TEST(YamlLite, ParsesPolicyReconfigurationShape) {
  // The structure of paper Fig. 3: module -> VSFs -> behavior/parameters.
  const char* text =
      "mac:\n"
      "  dl_ue_scheduler:\n"
      "    behavior: local_pf\n"
      "    parameters:\n"
      "      fairness: 0.8\n"
      "      rb_share: [0.7, 0.3]\n"
      "  ul_ue_scheduler:\n"
      "    behavior: remote\n";
  auto doc = parse_yaml(text);
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const YamlNode& root = doc.value();
  ASSERT_TRUE(root.is_map());
  const YamlNode* mac = root.find("mac");
  ASSERT_NE(mac, nullptr);
  const YamlNode* dl = mac->find("dl_ue_scheduler");
  ASSERT_NE(dl, nullptr);
  EXPECT_EQ(dl->find("behavior")->as_string(), "local_pf");
  const YamlNode* params = dl->find("parameters");
  ASSERT_NE(params, nullptr);
  EXPECT_DOUBLE_EQ(params->find("fairness")->as_double().value(), 0.8);
  const YamlNode* share = params->find("rb_share");
  ASSERT_TRUE(share->is_sequence());
  ASSERT_EQ(share->items().size(), 2u);
  EXPECT_DOUBLE_EQ(share->items()[0].as_double().value(), 0.7);
  EXPECT_EQ(mac->find("ul_ue_scheduler")->find("behavior")->as_string(), "remote");
}

TEST(YamlLite, BlockSequences) {
  const char* text =
      "vsfs:\n"
      "  - name: a\n"
      "    weight: 1\n"
      "  - name: b\n"
      "    weight: 2\n";
  auto doc = parse_yaml(text);
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  const YamlNode* vsfs = doc.value().find("vsfs");
  ASSERT_NE(vsfs, nullptr);
  ASSERT_TRUE(vsfs->is_sequence());
  ASSERT_EQ(vsfs->items().size(), 2u);
  EXPECT_EQ(vsfs->items()[0].find("name")->as_string(), "a");
  EXPECT_EQ(vsfs->items()[1].find("weight")->as_int().value(), 2);
}

TEST(YamlLite, ScalarSequencesAndComments) {
  const char* text =
      "# comment line\n"
      "values:\n"
      "  - 1\n"
      "  - 2\n"
      "name: test # trailing comment\n";
  auto doc = parse_yaml(text);
  ASSERT_TRUE(doc.ok()) << doc.error().message;
  EXPECT_EQ(doc.value().find("values")->items().size(), 2u);
  EXPECT_EQ(doc.value().find("name")->as_string(), "test");
}

TEST(YamlLite, DumpReparsesToSameStructure) {
  YamlNode root = YamlNode::map();
  YamlNode& mac = root.insert("mac", YamlNode::map());
  YamlNode& sched = mac.insert("dl_ue_scheduler", YamlNode::map());
  sched.insert("behavior", YamlNode::scalar("local_rr"));
  YamlNode& params = sched.insert("parameters", YamlNode::map());
  YamlNode shares = YamlNode::sequence();
  shares.append(YamlNode::scalar("0.4"));
  shares.append(YamlNode::scalar("0.6"));
  params.insert("rb_share", std::move(shares));

  auto reparsed = parse_yaml(root.dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message;
  const YamlNode* sched2 = reparsed.value().find("mac")->find("dl_ue_scheduler");
  ASSERT_NE(sched2, nullptr);
  EXPECT_EQ(sched2->find("behavior")->as_string(), "local_rr");
  EXPECT_EQ(sched2->find("parameters")->find("rb_share")->items().size(), 2u);
}

TEST(YamlLite, MalformedInputFails) {
  auto doc = parse_yaml("just a bare line without colon\n");
  EXPECT_FALSE(doc.ok());
}

TEST(YamlLite, EmptyDocumentIsEmptyMap) {
  auto doc = parse_yaml("\n  \n# only comments\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc.value().is_map());
  EXPECT_TRUE(doc.value().entries().empty());
}

}  // namespace
}  // namespace flexran::util
