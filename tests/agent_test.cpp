#include <gtest/gtest.h>

#include "agent/agent.h"
#include "agent/schedulers.h"
#include "scenario/testbed.h"

namespace flexran::agent {
namespace {

using scenario::Testbed;

stack::UeProfile cqi_ue(int cqi) {
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  return profile;
}

scenario::EnbSpec default_spec(lte::EnbId id = 1) {
  scenario::EnbSpec spec;
  spec.enb.enb_id = id;
  spec.enb.cells[0].cell_id = id;
  spec.agent.name = "enb-" + std::to_string(id);
  return spec;
}

// ----------------------------------------------------------- VSF registry --

TEST(VsfFactory, BuiltinsRegistered) {
  register_builtin_vsfs();
  auto& factory = VsfFactory::instance();
  EXPECT_TRUE(factory.has("mac", "dl_ue_scheduler", "local_rr"));
  EXPECT_TRUE(factory.has("mac", "dl_ue_scheduler", "local_pf"));
  EXPECT_TRUE(factory.has("mac", "ul_ue_scheduler", "local_rr"));
  EXPECT_TRUE(factory.has("rrc", "handover_policy", "a3"));
  EXPECT_FALSE(factory.has("mac", "dl_ue_scheduler", "nonexistent"));
}

TEST(VsfCache, StoreIsIdempotentAndLookupWorks) {
  register_builtin_vsfs();
  VsfCache cache;
  ASSERT_TRUE(cache.store("mac", "dl_ue_scheduler", "local_rr").ok());
  Vsf* first = cache.get("mac", "dl_ue_scheduler", "local_rr");
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(cache.store("mac", "dl_ue_scheduler", "local_rr").ok());
  EXPECT_EQ(cache.get("mac", "dl_ue_scheduler", "local_rr"), first);  // same instance
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.store("mac", "dl_ue_scheduler", "missing_impl").ok());
  EXPECT_EQ(cache.get("mac", "dl_ue_scheduler", "missing_impl"), nullptr);
}

TEST(ControlModule, BehaviorSwapAndTypeChecking) {
  register_builtin_vsfs();
  VsfCache cache;
  ASSERT_TRUE(cache.store("mac", "dl_ue_scheduler", "local_rr").ok());
  ASSERT_TRUE(cache.store("mac", "dl_ue_scheduler", "local_pf").ok());
  MacControlModule mac(cache);
  EXPECT_EQ(mac.dl_scheduler(), nullptr);

  ASSERT_TRUE(mac.set_behavior(MacControlModule::kDlSchedulerSlot, "local_rr").ok());
  EXPECT_NE(mac.dl_scheduler(), nullptr);
  EXPECT_EQ(mac.active_implementation(MacControlModule::kDlSchedulerSlot), "local_rr");

  ASSERT_TRUE(mac.set_behavior(MacControlModule::kDlSchedulerSlot, "local_pf").ok());
  EXPECT_EQ(mac.active_implementation(MacControlModule::kDlSchedulerSlot), "local_pf");

  // A UL scheduler cannot be linked into the DL slot.
  ASSERT_TRUE(cache.store("mac", "ul_ue_scheduler", "local_rr").ok());
  // (the cache key differs, so lookup fails -> not_found)
  EXPECT_FALSE(mac.set_behavior(MacControlModule::kDlSchedulerSlot, "local_ul").ok());
  EXPECT_FALSE(mac.set_behavior("bogus_slot", "local_rr").ok());
}

TEST(ControlModule, ParameterForwarding) {
  register_builtin_vsfs();
  VsfCache cache;
  ASSERT_TRUE(cache.store("mac", "dl_ue_scheduler", "local_pf").ok());
  MacControlModule mac(cache);
  ASSERT_TRUE(mac.set_behavior(MacControlModule::kDlSchedulerSlot, "local_pf").ok());

  EXPECT_TRUE(mac.set_parameter(MacControlModule::kDlSchedulerSlot, "max_ues_per_tti",
                                util::YamlNode::scalar("2"))
                  .ok());
  EXPECT_FALSE(mac.set_parameter(MacControlModule::kDlSchedulerSlot, "bogus",
                                 util::YamlNode::scalar("1"))
                   .ok());
  EXPECT_FALSE(mac.set_parameter(MacControlModule::kDlSchedulerSlot, "max_ues_per_tti",
                                 util::YamlNode::scalar("0"))
                   .ok());
}

// ----------------------------------------------------------- PRB packing ---

TEST(Packing, PrbsNeededRoundsUp) {
  const int mcs = lte::cqi_to_mcs(10);
  const auto per_prb = lte::tbs_bits(mcs, 1);
  EXPECT_EQ(prbs_needed(per_prb, mcs), 1);
  EXPECT_EQ(prbs_needed(per_prb + 1, mcs), 2);
  EXPECT_EQ(prbs_needed(0, mcs), 0);
  EXPECT_EQ(prbs_needed(1, mcs), 1);
}

TEST(Packing, ContiguousNonOverlapping) {
  std::vector<PrbDemand> demands = {{10, 20, 30}, {11, 20, 30}, {12, 20, 30}};
  const auto dcis = pack_dl_allocations(demands, 50);
  ASSERT_EQ(dcis.size(), 2u);  // 30 + 20, third UE gets nothing
  EXPECT_EQ(dcis[0].rbs.count(), 30);
  EXPECT_EQ(dcis[1].rbs.count(), 20);
  EXPECT_FALSE(dcis[0].rbs.overlaps(dcis[1].rbs));
}

// --------------------------------------------------------------- reports ---

class ReportsFixture : public ::testing::Test {
 protected:
  ReportsFixture() : enb_(simulator_, lte::EnbConfig{}), api_(enb_), reports_(api_) {
    stack::UeProfile profile;
    profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(10);
    rnti_ = enb_.add_ue(std::move(profile));
  }

  sim::Simulator simulator_;
  stack::EnodebDataPlane enb_;
  AgentApi api_;
  ReportsManager reports_;
  lte::Rnti rnti_ = 0;
};

TEST_F(ReportsFixture, OneOffFiresExactlyOnce) {
  proto::StatsRequest request;
  request.request_id = 1;
  request.mode = proto::ReportMode::one_off;
  reports_.register_request(request, 0);
  EXPECT_EQ(reports_.collect(1).size(), 1u);
  EXPECT_EQ(reports_.collect(2).size(), 0u);
  EXPECT_EQ(reports_.active_registrations(), 0u);
}

TEST_F(ReportsFixture, PeriodicHonorsPeriod) {
  proto::StatsRequest request;
  request.request_id = 2;
  request.mode = proto::ReportMode::periodic;
  request.periodicity_ttis = 3;
  reports_.register_request(request, 0);
  int fired = 0;
  for (std::int64_t sf = 0; sf < 12; ++sf) fired += static_cast<int>(reports_.collect(sf).size());
  EXPECT_EQ(fired, 4);  // sf 0, 3, 6, 9
}

TEST_F(ReportsFixture, TriggeredFiresOnlyOnChange) {
  proto::StatsRequest request;
  request.request_id = 3;
  request.mode = proto::ReportMode::triggered;
  request.flags = proto::stats_flags::kRlcQueue | proto::stats_flags::kBsr;
  reports_.register_request(request, 0);
  EXPECT_EQ(reports_.collect(1).size(), 1u);  // initial
  EXPECT_EQ(reports_.collect(2).size(), 0u);  // unchanged
  enb_.enqueue_dl(rnti_, lte::kDefaultDrb, 500);
  EXPECT_EQ(reports_.collect(3).size(), 1u);  // queue grew
  EXPECT_EQ(reports_.collect(4).size(), 0u);
}

TEST_F(ReportsFixture, TriggeredDetectsChangesPerFlagClass) {
  // A mutation visible to one flag class fires that registration and
  // leaves a disjoint one silent.
  proto::StatsRequest rlc;
  rlc.request_id = 20;
  rlc.mode = proto::ReportMode::triggered;
  rlc.flags = proto::stats_flags::kRlcQueue;
  proto::StatsRequest bsr;
  bsr.request_id = 21;
  bsr.mode = proto::ReportMode::triggered;
  bsr.flags = proto::stats_flags::kBsr;
  reports_.register_request(rlc, 0);
  reports_.register_request(bsr, 0);
  EXPECT_EQ(reports_.collect(1).size(), 2u);  // baselines
  EXPECT_EQ(reports_.collect(2).size(), 0u);

  // UL buffer bytes feed only the BSR report; the RLC queue view is blind
  // to them, so this is the exclusivity probe.
  enb_.enqueue_ul(rnti_, 700);
  auto due = reports_.collect(3);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].request_id, 21u);

  // A DL enqueue moves both views: rlc_queue_bytes directly, and bsr_bytes
  // because the BSR is computed from the DL queue per LC group.
  enb_.enqueue_dl(rnti_, lte::kDefaultDrb, 500);
  due = reports_.collect(4);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].request_id, 20u);
  EXPECT_EQ(due[1].request_id, 21u);

  // CQI sampling (kCqi) and cell load (kCellLoad) classes. The queue
  // registrations are cancelled first: running a real TTI below drains the
  // DL queue, which would fire them and muddy the count.
  for (const std::uint32_t id : {20u, 21u}) reports_.cancel_request(id);
  proto::StatsRequest cqi;
  cqi.request_id = 22;
  cqi.mode = proto::ReportMode::triggered;
  cqi.flags = proto::stats_flags::kCqi;
  proto::StatsRequest cell;
  cell.request_id = 23;
  cell.mode = proto::ReportMode::triggered;
  cell.flags = proto::stats_flags::kCellLoad;
  reports_.register_request(cqi, 5);
  reports_.register_request(cell, 5);
  EXPECT_EQ(reports_.collect(5).size(), 2u);  // baselines (CQI unsampled)
  enb_.subframe_begin(6);                     // samples CQI 0 -> 10
  due = reports_.collect(6);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].request_id, 22u);

  // Remaining per-UE classes (PHR, HARQ, MAC counters, RSRP): a scope
  // change -- a new UE joining -- must register as a content change. The
  // earlier registrations are cancelled so the count below isolates the
  // four classes under test.
  for (const std::uint32_t id : {22u, 23u}) reports_.cancel_request(id);
  for (const std::uint32_t flag :
       {proto::stats_flags::kPhr, proto::stats_flags::kHarq,
        proto::stats_flags::kMacCounters, proto::stats_flags::kRsrp}) {
    proto::StatsRequest request;
    request.request_id = 30 + flag;
    request.mode = proto::ReportMode::triggered;
    request.flags = flag;
    reports_.register_request(request, 7);
  }
  EXPECT_EQ(reports_.collect(7).size(), 4u);  // baselines
  EXPECT_EQ(reports_.collect(8).size(), 0u);
  stack::UeProfile extra;
  extra.dl_channel = std::make_unique<phy::FixedCqiChannel>(7);
  enb_.add_ue(std::move(extra));
  EXPECT_EQ(reports_.collect(9).size(), 4u);  // every class sees the change
  EXPECT_EQ(reports_.collect(10).size(), 0u);
}

TEST_F(ReportsFixture, TriggeredRebaselinesAfterClear) {
  proto::StatsRequest request;
  request.request_id = 24;
  request.mode = proto::ReportMode::triggered;
  request.flags = proto::stats_flags::kRlcQueue;
  reports_.register_request(request, 0);
  EXPECT_EQ(reports_.collect(1).size(), 1u);

  // Session teardown drops the registration; the master re-installs it on
  // re-sync. The fresh registration must fire a baseline report even
  // though the contents never changed -- the master's view was lost with
  // the session -- and suppression must resume after it.
  reports_.clear();
  EXPECT_EQ(reports_.active_registrations(), 0u);
  reports_.register_request(request, 2);
  EXPECT_EQ(reports_.collect(3).size(), 1u);
  EXPECT_EQ(reports_.collect(4).size(), 0u);
  enb_.enqueue_dl(rnti_, lte::kDefaultDrb, 300);
  EXPECT_EQ(reports_.collect(5).size(), 1u);
}

TEST_F(ReportsFixture, UeScopedRequestReportsOnlyListedUes) {
  stack::UeProfile other_profile;
  other_profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(5);
  const auto other = enb_.add_ue(std::move(other_profile));
  (void)other;

  proto::StatsRequest request;
  request.request_id = 9;
  request.mode = proto::ReportMode::one_off;
  request.ues = {rnti_};  // scope to one UE
  reports_.register_request(request, 0);
  auto due = reports_.collect(1);
  ASSERT_EQ(due.size(), 1u);
  ASSERT_EQ(due[0].ue_reports.size(), 1u);
  EXPECT_EQ(due[0].ue_reports[0].rnti, rnti_);
}

TEST_F(ReportsFixture, PeriodicReplacementReschedulesFromNow) {
  proto::StatsRequest request;
  request.request_id = 6;
  request.mode = proto::ReportMode::periodic;
  request.periodicity_ttis = 2;
  reports_.register_request(request, 0);
  EXPECT_EQ(reports_.collect(0).size(), 1u);  // fresh registration: immediate

  // Replace at sf 1 with a longer period (the master renegotiating under
  // overload). The replacement must NOT fire immediately, must NOT inherit
  // the old next_due (sf 2), and must fire at 1 + 5 = 6.
  request.periodicity_ttis = 5;
  reports_.register_request(request, 1);
  EXPECT_EQ(reports_.collect(2).size(), 0u);  // stale cadence suppressed
  EXPECT_EQ(reports_.collect(5).size(), 0u);
  EXPECT_EQ(reports_.collect(6).size(), 1u);  // new period, from replacement
  EXPECT_EQ(reports_.collect(11).size(), 1u);
}

TEST_F(ReportsFixture, TriggeredReplacementPreservesFingerprint) {
  proto::StatsRequest request;
  request.request_id = 7;
  request.mode = proto::ReportMode::triggered;
  request.flags = proto::stats_flags::kRlcQueue;
  reports_.register_request(request, 0);
  EXPECT_EQ(reports_.collect(1).size(), 1u);  // baseline
  // Re-registering the same request (e.g. a re-sent frame) keeps the
  // fingerprint: no spurious re-fire on unchanged contents.
  reports_.register_request(request, 2);
  EXPECT_EQ(reports_.collect(3).size(), 0u);
  enb_.enqueue_dl(rnti_, lte::kDefaultDrb, 500);
  EXPECT_EQ(reports_.collect(4).size(), 1u);  // change still detected
}

TEST_F(ReportsFixture, ThrottleStretchesPeriodicReports) {
  proto::StatsRequest request;
  request.request_id = 8;
  request.mode = proto::ReportMode::periodic;
  request.periodicity_ttis = 2;
  reports_.register_request(request, 0);
  EXPECT_EQ(reports_.collect(0).size(), 1u);  // next_due = 2

  reports_.set_throttle(3);
  // Already-due report fires once, then reschedules at the stretched
  // period (2 * 3 = 6).
  EXPECT_EQ(reports_.collect(2).size(), 1u);
  EXPECT_EQ(reports_.collect(4).size(), 0u);
  EXPECT_EQ(reports_.collect(8).size(), 1u);

  // Hint 0 clamps back to full rate -- effective at the next
  // rescheduling, so the already-stretched next_due (14) still stands.
  reports_.set_throttle(0);
  EXPECT_EQ(reports_.throttle(), 1u);
  EXPECT_EQ(reports_.collect(10).size(), 0u);
  EXPECT_EQ(reports_.collect(14).size(), 1u);
  EXPECT_EQ(reports_.collect(16).size(), 1u);  // original cadence restored
}

TEST_F(ReportsFixture, CancelViaZeroFlags) {
  proto::StatsRequest request;
  request.request_id = 4;
  request.mode = proto::ReportMode::periodic;
  reports_.register_request(request, 0);
  EXPECT_EQ(reports_.active_registrations(), 1u);
  request.flags = 0;
  reports_.register_request(request, 0);
  EXPECT_EQ(reports_.active_registrations(), 0u);
}

TEST_F(ReportsFixture, FlagsFilterReportContents) {
  proto::StatsRequest request;
  request.request_id = 5;
  request.mode = proto::ReportMode::one_off;
  request.flags = proto::stats_flags::kCqi;  // CQI only, no cell reports
  enb_.enqueue_dl(rnti_, lte::kDefaultDrb, 500);
  enb_.subframe_begin(1);  // samples CQI
  reports_.register_request(request, 1);
  auto due = reports_.collect(1);
  ASSERT_EQ(due.size(), 1u);
  ASSERT_EQ(due[0].ue_reports.size(), 1u);
  EXPECT_EQ(due[0].ue_reports[0].wb_cqi, 10);
  EXPECT_EQ(due[0].ue_reports[0].rlc_queue_bytes, 0u);  // filtered out
  EXPECT_TRUE(due[0].cell_reports.empty());
}

// --------------------------------------------------- end-to-end via testbed --

TEST(AgentEndToEnd, HelloAndAutoConfigurationPopulateRib) {
  Testbed testbed;
  auto& enb = testbed.add_enb(default_spec(7));
  testbed.add_ue(0, cqi_ue(10));
  testbed.run_ttis(30);

  const auto* agent_node = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(agent_node, nullptr);
  EXPECT_EQ(agent_node->enb_id, 7u);
  EXPECT_EQ(agent_node->name, "enb-7");
  ASSERT_FALSE(agent_node->capabilities.empty());
  ASSERT_TRUE(agent_node->cells.contains(7));
  EXPECT_DOUBLE_EQ(agent_node->cells.at(7).config.bandwidth_mhz, 10.0);
}

TEST(AgentEndToEnd, LocalSchedulerAttachesAndServesUes) {
  Testbed testbed(scenario::per_tti_master_config());
  testbed.add_enb(default_spec());
  const auto rnti_a = testbed.add_ue(0, cqi_ue(15));
  const auto rnti_b = testbed.add_ue(0, cqi_ue(15));
  testbed.run_ttis(50);

  auto& dp = *testbed.enb(0).data_plane;
  ASSERT_TRUE(dp.ue(rnti_a)->connected());
  ASSERT_TRUE(dp.ue(rnti_b)->connected());

  // Saturate both UEs for two seconds; round robin must split evenly.
  testbed.on_tti([&](std::int64_t) {
    for (auto rnti : {rnti_a, rnti_b}) {
      if (dp.ue(rnti)->dl_queue.total_bytes() < 50'000) {
        (void)testbed.epc().downlink(rnti, 50'000);
      }
    }
  });
  testbed.run_ttis(2000);
  const auto bytes_a = testbed.metrics().total_bytes(1, rnti_a, lte::Direction::downlink);
  const auto bytes_b = testbed.metrics().total_bytes(1, rnti_b, lte::Direction::downlink);
  const double mbps_total = scenario::Metrics::mbps(bytes_a + bytes_b, 2.0);
  EXPECT_GT(mbps_total, 20.0);
  EXPECT_LT(mbps_total, 27.0);
  // Fairness: within 10%.
  EXPECT_NEAR(static_cast<double>(bytes_a) / static_cast<double>(bytes_b), 1.0, 0.1);
}

TEST(AgentEndToEnd, PolicyReconfigurationSwapsScheduler) {
  Testbed testbed;
  auto& enb = testbed.add_enb(default_spec());
  testbed.run_ttis(5);
  EXPECT_EQ(enb.agent->mac().active_implementation(MacControlModule::kDlSchedulerSlot),
            "local_rr");

  const char* yaml =
      "mac:\n"
      "  dl_ue_scheduler:\n"
      "    behavior: local_pf\n"
      "    parameters:\n"
      "      max_ues_per_tti: 2\n";
  ASSERT_TRUE(testbed.master().send_policy(enb.agent_id, yaml).ok());
  testbed.run_ttis(5);
  EXPECT_EQ(enb.agent->mac().active_implementation(MacControlModule::kDlSchedulerSlot),
            "local_pf");
}

TEST(AgentEndToEnd, VsfUpdationPushesIntoCache) {
  register_builtin_vsfs();
  // A custom implementation registered process-wide, as a third-party VSF
  // developer would (the factory stands in for the .so, see DESIGN.md).
  VsfFactory::instance().register_implementation(
      "mac", "dl_ue_scheduler", "test_custom", [] { return std::make_unique<RoundRobinDlVsf>(); });

  Testbed testbed;
  auto& enb = testbed.add_enb(default_spec());
  testbed.run_ttis(2);
  EXPECT_EQ(enb.agent->vsf_cache().get("mac", "dl_ue_scheduler", "test_custom"), nullptr);

  ASSERT_TRUE(
      testbed.master().push_vsf(enb.agent_id, "mac", "dl_ue_scheduler", "test_custom").ok());
  testbed.run_ttis(2);
  EXPECT_NE(enb.agent->vsf_cache().get("mac", "dl_ue_scheduler", "test_custom"), nullptr);

  // And it can now be activated by policy.
  ASSERT_TRUE(testbed.master()
                  .send_policy(enb.agent_id,
                               "mac:\n  dl_ue_scheduler:\n    behavior: test_custom\n")
                  .ok());
  testbed.run_ttis(2);
  EXPECT_EQ(enb.agent->mac().active_implementation(MacControlModule::kDlSchedulerSlot),
            "test_custom");
}

TEST(AgentEndToEnd, StaleDlMacConfigCountsMissedDeadline) {
  Testbed testbed;
  auto& enb = testbed.add_enb(default_spec());
  const auto rnti = testbed.add_ue(0, cqi_ue(15));
  testbed.run_ttis(30);

  proto::DlMacConfig config;
  config.cell_id = 1;
  config.target_subframe = testbed.current_tti() - 10;  // hopelessly late
  lte::DlDci dci;
  dci.rnti = rnti;
  dci.rbs.set_range(0, 10);
  dci.mcs = 10;
  config.dcis.push_back(dci);
  ASSERT_TRUE(testbed.master().send_dl_mac_config(enb.agent_id, config).ok());
  testbed.run_ttis(5);
  EXPECT_EQ(enb.agent->missed_deadline_decisions(), 1u);
  EXPECT_EQ(enb.agent->remote_decisions_applied(), 0u);
}

TEST(AgentEndToEnd, AbsConfigCommandReachesDataPlane) {
  Testbed testbed;
  auto& enb = testbed.add_enb(default_spec());
  testbed.run_ttis(2);

  proto::AbsConfig abs;
  abs.cell_id = 1;
  abs.pattern = lte::AbsPattern::per_frame(4);
  abs.mute_during_abs = true;
  ASSERT_TRUE(testbed.master().send_abs_config(enb.agent_id, abs).ok());
  testbed.run_ttis(2);
  EXPECT_EQ(enb.data_plane->abs_pattern().abs_count(), 16);
  EXPECT_TRUE(enb.data_plane->muted_in(0));
  EXPECT_FALSE(enb.data_plane->muted_in(5));
}

TEST(AgentEndToEnd, EventUnsubscribeStopsNotifications) {
  Testbed testbed;  // no default subscriptions
  auto& enb = testbed.add_enb(default_spec());
  testbed.run_ttis(5);

  // Subscribe to attach events, observe one, unsubscribe, observe none.
  ASSERT_TRUE(testbed.master()
                  .subscribe_events(enb.agent_id, {proto::EventType::ue_attach}, true)
                  .ok());
  testbed.run_ttis(5);
  testbed.add_ue(0, cqi_ue(15));
  testbed.run_ttis(30);
  const auto& rx = testbed.master().rx_accounting(enb.agent_id);
  const auto mgmt_after_first = rx.messages(proto::MessageCategory::agent_management);

  ASSERT_TRUE(testbed.master()
                  .subscribe_events(enb.agent_id, {proto::EventType::ue_attach}, false)
                  .ok());
  testbed.run_ttis(5);
  const auto mgmt_before_second = rx.messages(proto::MessageCategory::agent_management);
  testbed.add_ue(0, cqi_ue(15));
  testbed.run_ttis(30);
  // No attach notification crossed the wire after unsubscribing.
  EXPECT_EQ(rx.messages(proto::MessageCategory::agent_management), mgmt_before_second);
  EXPECT_GT(mgmt_after_first, 0u);
}

TEST(AgentEndToEnd, RemovedUeVanishesFromReportsAndInFlight) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(default_spec());
  const auto keep = testbed.add_ue(0, cqi_ue(15));
  const auto drop = testbed.add_ue(0, cqi_ue(15));
  testbed.run_ttis(30);
  ASSERT_TRUE(enb.data_plane->ue(drop)->connected());

  // Put data in flight for the UE, then remove it mid-transfer.
  enb.data_plane->enqueue_dl(drop, lte::kDefaultDrb, 50'000);
  testbed.run_ttis(2);
  ASSERT_TRUE(enb.data_plane->remove_ue(drop).ok());
  testbed.run_ttis(30);  // pending HARQ feedback must not crash or deliver

  EXPECT_EQ(enb.data_plane->ue(drop), nullptr);
  EXPECT_NE(enb.data_plane->ue(keep), nullptr);
  const auto view = enb.data_plane->scheduler_view();
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].rnti, keep);
}

TEST(AgentEndToEnd, SurvivesMalformedAndUnexpectedMessages) {
  Testbed testbed;
  auto& enb = testbed.add_enb(default_spec());
  const auto rnti = testbed.add_ue(0, cqi_ue(15));
  testbed.run_ttis(20);
  ASSERT_TRUE(enb.data_plane->ue(rnti)->connected());

  // Garbage bytes, a truncated envelope, and an agent-to-master-only
  // message type arriving at the agent: all must be absorbed.
  ASSERT_TRUE(enb.master_side->send(std::vector<std::uint8_t>{0xde, 0xad, 0xbe, 0xef}).ok());
  auto valid = proto::pack(proto::EchoRequest{.subframe = 1, .timestamp_us = 2});
  valid.resize(valid.size() / 2);
  ASSERT_TRUE(enb.master_side->send(valid).ok());
  ASSERT_TRUE(enb.master_side->send(proto::pack(proto::Hello{})).ok());

  // A policy for an unknown module must fail without breaking the agent.
  EXPECT_FALSE(enb.agent->apply_policy("pdcp:\n  rohc:\n    behavior: x\n").ok());
  EXPECT_FALSE(enb.agent->apply_policy("mac:\n  bogus_slot:\n    behavior: x\n").ok());

  testbed.run_ttis(50);
  // The agent is still alive and scheduling.
  EXPECT_TRUE(enb.data_plane->ue(rnti)->connected());
  enb.data_plane->enqueue_dl(rnti, lte::kDefaultDrb, 5000);
  testbed.run_ttis(10);
  EXPECT_EQ(enb.data_plane->ue(rnti)->dl_queue.total_bytes(), 0u);
}

TEST(AgentEndToEnd, MasterSurvivesGarbageFromAgent) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(default_spec());
  testbed.add_ue(0, cqi_ue(10));
  testbed.run_ttis(20);

  ASSERT_TRUE(enb.agent_side->send(std::vector<std::uint8_t>{0xff, 0x00, 0x13}).ok());
  // A master-to-agent-only type arriving at the master.
  ASSERT_TRUE(enb.agent_side->send(proto::pack(proto::StatsRequest{})).ok());
  testbed.run_ttis(50);

  // The RIB keeps updating normally afterwards.
  const auto updates_before = testbed.master().updates_applied();
  testbed.run_ttis(50);
  EXPECT_GT(testbed.master().updates_applied(), updates_before);
}

TEST(AgentEndToEnd, SignalingAccountingSeparatesCategories) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(default_spec());
  testbed.add_ue(0, cqi_ue(10));
  testbed.run_ttis(100);

  const auto& tx = enb.agent->tx_accounting();
  EXPECT_GT(tx.bytes(proto::MessageCategory::stats), 0u);
  EXPECT_GT(tx.bytes(proto::MessageCategory::sync), 0u);
  EXPECT_GT(tx.bytes(proto::MessageCategory::agent_management), 0u);
  // Stats dominate sync, sync dominates management (Fig. 7a ordering).
  EXPECT_GT(tx.bytes(proto::MessageCategory::stats), tx.bytes(proto::MessageCategory::sync));
  EXPECT_GT(tx.bytes(proto::MessageCategory::sync),
            tx.bytes(proto::MessageCategory::agent_management));
}

TEST(AgentEndToEnd, RxAccountingReconcilesWithMasterTx) {
  // Fig. 7 reconciliation from both ends of the wire: every byte the
  // master records as sent to this agent shows up in the agent's rx
  // accountant, in the same category, with the same frame-header-bytes
  // convention. (Zero-delay loss-free link, so nothing is in flight once
  // the run stops.)
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(default_spec());
  testbed.add_ue(0, cqi_ue(10));
  testbed.run_ttis(100);
  testbed.master().quiesce();

  const auto& master_tx = testbed.master().tx_accounting(enb.agent_id);
  const auto& agent_rx = enb.agent->rx_accounting();
  ASSERT_GT(master_tx.total_messages(), 0u);
  for (auto category :
       {proto::MessageCategory::agent_management, proto::MessageCategory::sync,
        proto::MessageCategory::stats, proto::MessageCategory::commands,
        proto::MessageCategory::delegation}) {
    EXPECT_EQ(agent_rx.bytes(category), master_tx.bytes(category))
        << proto::to_string(category);
    EXPECT_EQ(agent_rx.messages(category), master_tx.messages(category))
        << proto::to_string(category);
  }
}

TEST(AgentEndToEnd, AccountedBytesMatchFramedLinkBytes) {
  // The shared convention is `wire.size() + net::kFrameHeaderBytes` per
  // message, which is exactly what the framed link carries: accounted
  // totals must equal the transport's byte counter with no fudge factor.
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(default_spec());
  testbed.add_ue(0, cqi_ue(10));
  testbed.run_ttis(100);

  EXPECT_EQ(enb.agent->tx_accounting().total_bytes(), enb.agent_side->bytes_sent());
  EXPECT_EQ(enb.agent->tx_accounting().total_messages(), enb.agent_side->messages_sent());
  // Same convention on the receive side: what the agent counted as
  // received equals what the master side framed and sent (loss-free link).
  EXPECT_EQ(enb.agent->rx_accounting().total_bytes(), enb.master_side->bytes_sent());
}

}  // namespace
}  // namespace flexran::agent
