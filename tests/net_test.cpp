#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "net/framing.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"

namespace flexran::net {
namespace {

// ----------------------------------------------------------------- framing --

TEST(Framing, FrameAddsHeader) {
  std::vector<std::uint8_t> payload = {1, 2, 3};
  const auto framed = frame_message(payload);
  ASSERT_EQ(framed.size(), kFrameHeaderBytes + 3);
  EXPECT_EQ(framed[0], 3);  // little-endian length
  EXPECT_EQ(framed[4], 1);
}

TEST(Framing, AssemblerHandlesExactFrames) {
  FrameAssembler assembler;
  std::vector<std::vector<std::uint8_t>> frames;
  auto sink = [&](std::span<const std::uint8_t> f) { frames.emplace_back(f.begin(), f.end()); };
  ASSERT_TRUE(assembler.feed(frame_message(std::vector<std::uint8_t>{7, 8}), sink).ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], (std::vector<std::uint8_t>{7, 8}));
}

TEST(Framing, AssemblerHandlesByteAtATimeDelivery) {
  FrameAssembler assembler;
  std::vector<std::vector<std::uint8_t>> frames;
  auto sink = [&](std::span<const std::uint8_t> f) { frames.emplace_back(f.begin(), f.end()); };
  const auto framed = frame_message(std::vector<std::uint8_t>{9, 10, 11});
  for (auto byte : framed) {
    ASSERT_TRUE(assembler.feed(std::span(&byte, 1), sink).ok());
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], (std::vector<std::uint8_t>{9, 10, 11}));
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(Framing, AssemblerHandlesCoalescedFrames) {
  FrameAssembler assembler;
  std::vector<std::vector<std::uint8_t>> frames;
  auto sink = [&](std::span<const std::uint8_t> f) { frames.emplace_back(f.begin(), f.end()); };
  auto combined = frame_message(std::vector<std::uint8_t>{1});
  const auto second = frame_message(std::vector<std::uint8_t>{2, 3});
  combined.insert(combined.end(), second.begin(), second.end());
  ASSERT_TRUE(assembler.feed(combined, sink).ok());
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[1], (std::vector<std::uint8_t>{2, 3}));
}

TEST(Framing, EmptyPayloadFrame) {
  FrameAssembler assembler;
  int count = 0;
  auto sink = [&](std::span<const std::uint8_t> f) {
    EXPECT_TRUE(f.empty());
    ++count;
  };
  ASSERT_TRUE(assembler.feed(frame_message({}), sink).ok());
  EXPECT_EQ(count, 1);
}

TEST(Framing, MaxFrameBoundary) {
  FrameAssembler assembler;
  int frames = 0;
  auto sink = [&](std::span<const std::uint8_t> f) {
    EXPECT_EQ(f.size(), kMaxFrameBytes);
    ++frames;
  };
  // Exactly kMaxFrameBytes is accepted...
  ASSERT_TRUE(
      assembler.feed(frame_message(std::vector<std::uint8_t>(kMaxFrameBytes)), sink).ok());
  EXPECT_EQ(frames, 1);
  // ...one byte more is rejected.
  FrameAssembler assembler2;
  util::ByteBuffer oversized;
  oversized.write_u32(static_cast<std::uint32_t>(kMaxFrameBytes + 1));
  EXPECT_FALSE(assembler2.feed(oversized.contents(), sink).ok());
}

TEST(Framing, OversizedLengthRejected) {
  FrameAssembler assembler;
  util::ByteBuffer bad;
  bad.write_u32(0x7fffffff);
  EXPECT_FALSE(assembler.feed(bad.contents(), [](std::span<const std::uint8_t>) {}).ok());
}

TEST(Framing, DripFeedLargeFrameIsNotQuadratic) {
  // S1 regression guard: feeding a 64 KiB frame one byte at a time used to
  // rewind via an O(consumed) erase per feed (quadratic overall). With
  // seek() + amortized compact() the whole drip completes instantly and
  // still yields exactly one intact frame.
  constexpr std::size_t kPayloadBytes = 64 * 1024;
  std::vector<std::uint8_t> payload(kPayloadBytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131);
  }
  const auto framed = frame_message(payload);

  FrameAssembler assembler;
  std::vector<std::uint8_t> received;
  int frames = 0;
  auto sink = [&](std::span<const std::uint8_t> f) {
    received.assign(f.begin(), f.end());
    ++frames;
  };
  for (auto byte : framed) {
    ASSERT_TRUE(assembler.feed(std::span(&byte, 1), sink).ok());
  }
  EXPECT_EQ(frames, 1);
  EXPECT_EQ(received, payload);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(Framing, ManySmallFramesPerFeedAreBatched) {
  // One feed carrying many coalesced frames must deliver them all in a
  // single drain pass, in order, leaving nothing buffered.
  constexpr int kFrames = 1000;
  util::ByteBuffer combined;
  for (int i = 0; i < kFrames; ++i) {
    const std::uint8_t byte = static_cast<std::uint8_t>(i);
    frame_into(combined, std::span(&byte, 1));
  }
  FrameAssembler assembler;
  int count = 0;
  bool in_order = true;
  auto sink = [&](std::span<const std::uint8_t> f) {
    if (f.size() != 1 || f[0] != static_cast<std::uint8_t>(count)) in_order = false;
    ++count;
  };
  ASSERT_TRUE(assembler.feed(combined.contents(), sink).ok());
  EXPECT_EQ(count, kFrames);
  EXPECT_TRUE(in_order);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(Framing, OversizedFramePoisonsAssemblerUntilReset) {
  // S2: after an oversized length the assembler must fail deterministically
  // -- same error on every subsequent feed, no partial consumption -- until
  // an explicit reset() gives it a fresh stream.
  FrameAssembler assembler;
  int delivered = 0;
  auto sink = [&](std::span<const std::uint8_t>) { ++delivered; };

  // A valid frame followed by a poisoned header in the same feed: the valid
  // frame is delivered, then the feed errors.
  util::ByteBuffer stream;
  frame_into(stream, std::vector<std::uint8_t>{1, 2, 3});
  stream.write_u32(static_cast<std::uint32_t>(kMaxFrameBytes + 1));
  EXPECT_FALSE(assembler.feed(stream.contents(), sink).ok());
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(assembler.poisoned());

  // Even well-formed traffic is rejected now: the stream position is not
  // trustworthy after a corrupt header.
  const auto good = frame_message(std::vector<std::uint8_t>{4, 5});
  EXPECT_FALSE(assembler.feed(good, sink).ok());
  EXPECT_FALSE(assembler.feed(good, sink).ok());
  EXPECT_EQ(delivered, 1);

  // reset() clears the poison and the buffered garbage.
  assembler.reset();
  EXPECT_FALSE(assembler.poisoned());
  EXPECT_EQ(assembler.buffered(), 0u);
  ASSERT_TRUE(assembler.feed(good, sink).ok());
  EXPECT_EQ(delivered, 2);
}

// ----------------------------------------------------------- sim transport --

TEST(SimTransport, RoundTripWithLatency) {
  sim::Simulator simulator;
  auto pair = make_sim_transport_pair(simulator, {.delay = sim::from_ms(5)});
  std::vector<std::uint8_t> received;
  sim::TimeUs received_at = -1;
  pair.b->set_receive_callback([&](std::span<const std::uint8_t> msg) {
    received.assign(msg.begin(), msg.end());
    received_at = simulator.now();
  });
  ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{1, 2, 3}).ok());
  simulator.run();
  EXPECT_EQ(received, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(received_at, sim::from_ms(5));
}

TEST(SimTransport, BidirectionalAndAsymmetric) {
  sim::Simulator simulator;
  auto pair = make_sim_transport_pair(simulator, {.delay = sim::from_ms(1)},
                                      {.delay = sim::from_ms(20)});
  sim::TimeUs a_to_b = -1;
  sim::TimeUs b_to_a = -1;
  pair.b->set_receive_callback([&](std::span<const std::uint8_t>) { a_to_b = simulator.now(); });
  pair.a->set_receive_callback([&](std::span<const std::uint8_t>) { b_to_a = simulator.now(); });
  ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{1}).ok());
  ASSERT_TRUE(pair.b->send(std::vector<std::uint8_t>{2}).ok());
  simulator.run();
  EXPECT_EQ(a_to_b, sim::from_ms(1));
  EXPECT_EQ(b_to_a, sim::from_ms(20));
}

TEST(SimTransport, CountsFramedBytes) {
  sim::Simulator simulator;
  auto pair = make_sim_transport_pair(simulator);
  pair.b->set_receive_callback([](std::span<const std::uint8_t>) {});
  ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>(10)).ok());
  simulator.run();
  EXPECT_EQ(pair.a->messages_sent(), 1u);
  EXPECT_EQ(pair.a->bytes_sent(), 10u + kFrameHeaderBytes);
}

TEST(SimTransport, ManyMessagesPreserveOrder) {
  sim::Simulator simulator;
  auto pair = make_sim_transport_pair(simulator, {.delay = sim::from_ms(2), .jitter = sim::from_ms(3), .seed = 5});
  std::vector<std::uint8_t> order;
  pair.b->set_receive_callback(
      [&](std::span<const std::uint8_t> msg) { order.push_back(msg.front()); });
  for (std::uint8_t i = 0; i < 100; ++i) {
    simulator.at(i * 137, [&pair, i] {
      ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{i}).ok());
    });
  }
  simulator.run();
  ASSERT_EQ(order.size(), 100u);
  for (std::uint8_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimTransport, RuntimeDelayChange) {
  sim::Simulator simulator;
  auto pair = make_sim_transport_pair(simulator);
  std::vector<sim::TimeUs> arrivals;
  pair.b->set_receive_callback([&](std::span<const std::uint8_t>) { arrivals.push_back(simulator.now()); });
  ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{0}).ok());
  simulator.at(sim::from_ms(10), [&] {
    pair.a->set_delay(sim::from_ms(25));
    ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{1}).ok());
  });
  simulator.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 0);
  EXPECT_EQ(arrivals[1], sim::from_ms(35));
}

TEST(SimTransport, InjectDisconnectFiresCallback) {
  sim::Simulator simulator;
  auto pair = make_sim_transport_pair(simulator);
  int disconnects = 0;
  std::string reason;
  pair.b->set_disconnect_callback([&](util::Error error) {
    reason = error.message;
    ++disconnects;
  });
  pair.b->inject_disconnect(util::Error::transport_failure("injected peer reset"));
  EXPECT_EQ(disconnects, 1);
  EXPECT_EQ(reason, "injected peer reset");
}

TEST(SimTransport, CorruptedFrameFiresDisconnectCallback) {
  sim::Simulator simulator;
  auto pair = make_sim_transport_pair(simulator);
  int received = 0;
  int disconnects = 0;
  pair.b->set_receive_callback([&](std::span<const std::uint8_t>) { ++received; });
  pair.b->set_disconnect_callback([&](util::Error) { ++disconnects; });

  pair.b->corrupt_next(1);
  ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{1, 2, 3}).ok());
  ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{4, 5}).ok());
  simulator.run();
  // The corrupted frame reaches the assembler but its payload is mangled;
  // frame boundaries survive, so the next frame still arrives.
  EXPECT_EQ(pair.b->frames_corrupted(), 1u);
  EXPECT_EQ(received, 2);
  EXPECT_EQ(disconnects, 0);
}

TEST(SimTransport, ReorderShufflesHeldFramesDeterministically) {
  // Two identical runs: the shuffle must be a fixed permutation of the
  // held frames (seeded, not wall-clock random), covering all of them.
  auto run_once = [](std::vector<std::uint8_t>& order) {
    sim::Simulator simulator;
    auto pair = make_sim_transport_pair(simulator);
    pair.b->set_receive_callback(
        [&order](std::span<const std::uint8_t> msg) { order.push_back(msg.front()); });
    pair.b->reorder_next(4, /*seed=*/42);
    for (std::uint8_t i = 0; i < 6; ++i) {
      simulator.at(i * 100, [&pair, i] {
        ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{i}).ok());
      });
    }
    simulator.run();
    EXPECT_EQ(pair.b->frames_reordered(), 4u);
  };
  std::vector<std::uint8_t> first;
  std::vector<std::uint8_t> second;
  run_once(first);
  run_once(second);
  ASSERT_EQ(first.size(), 6u);
  EXPECT_EQ(first, second);
  // The first four frames were held and released together; every frame
  // arrives exactly once, and the ones past the hold stay in order.
  std::vector<std::uint8_t> head(first.begin(), first.begin() + 4);
  std::sort(head.begin(), head.end());
  EXPECT_EQ(head, (std::vector<std::uint8_t>{0, 1, 2, 3}));
  EXPECT_EQ(first[4], 4);
  EXPECT_EQ(first[5], 5);
  // The seeded shuffle actually moved something (locked permutation).
  EXPECT_NE((std::vector<std::uint8_t>(first.begin(), first.begin() + 4)),
            (std::vector<std::uint8_t>{0, 1, 2, 3}));
}

TEST(SimTransport, ReorderFlushReleasesAPartialHold) {
  sim::Simulator simulator;
  auto pair = make_sim_transport_pair(simulator);
  std::vector<std::uint8_t> order;
  pair.b->set_receive_callback(
      [&order](std::span<const std::uint8_t> msg) { order.push_back(msg.front()); });
  pair.b->reorder_next(5, /*seed=*/7);
  ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{1}).ok());
  ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{2}).ok());
  simulator.run();
  // Fewer frames arrived than the hold asked for: nothing delivered yet.
  EXPECT_TRUE(order.empty());
  // The deadline flush releases what is buffered and disarms the hold.
  pair.b->reorder_flush();
  ASSERT_EQ(order.size(), 2u);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(pair.b->frames_reordered(), 2u);
  // Subsequent traffic flows straight through.
  ASSERT_TRUE(pair.a->send(std::vector<std::uint8_t>{3}).ok());
  simulator.run();
  EXPECT_EQ(order.back(), 3);
}

// ----------------------------------------------------------- tcp transport --

TEST(TcpTransport, ConnectSendReceive) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.ok()) << listener.error().message;
  const auto port = (*listener)->port();

  std::atomic<int> server_received{0};
  std::vector<std::uint8_t> last_server_msg;
  std::unique_ptr<TcpTransport> server_side;
  std::thread server([&] {
    auto accepted = (*listener)->accept();
    ASSERT_TRUE(accepted.ok());
    server_side = std::move(*accepted);
    server_side->set_receive_callback([&](std::span<const std::uint8_t> msg) {
      last_server_msg.assign(msg.begin(), msg.end());
      server_received.fetch_add(1);
    });
    server_side->start();
  });

  auto client = TcpTransport::connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.error().message;
  server.join();

  std::atomic<int> client_received{0};
  (*client)->set_receive_callback([&](std::span<const std::uint8_t>) { client_received.fetch_add(1); });
  (*client)->start();

  ASSERT_TRUE((*client)->send(std::vector<std::uint8_t>{42, 43}).ok());
  for (int i = 0; i < 200 && server_received.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server_received.load(), 1);
  EXPECT_EQ(last_server_msg, (std::vector<std::uint8_t>{42, 43}));

  // Reply path.
  ASSERT_TRUE(server_side->send(std::vector<std::uint8_t>{7}).ok());
  for (int i = 0; i < 200 && client_received.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(client_received.load(), 1);
  EXPECT_EQ((*client)->messages_sent(), 1u);
  EXPECT_EQ((*client)->bytes_sent(), 2u + kFrameHeaderBytes);

  (*client)->close();
  server_side->close();
}

TEST(TcpTransport, ManyMessagesSurviveSegmentation) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.ok());
  const auto port = (*listener)->port();

  std::atomic<int> received{0};
  std::atomic<bool> in_order{true};
  std::unique_ptr<TcpTransport> server_side;
  std::thread server([&] {
    auto accepted = (*listener)->accept();
    ASSERT_TRUE(accepted.ok());
    server_side = std::move(*accepted);
    int expected = 0;
    server_side->set_receive_callback([&, expected](std::span<const std::uint8_t> msg) mutable {
      if (msg.size() != 300 || msg[0] != static_cast<std::uint8_t>(expected % 256)) {
        in_order.store(false);
      }
      ++expected;
      received.fetch_add(1);
    });
    server_side->start();
  });

  auto client = TcpTransport::connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  server.join();

  const int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    std::vector<std::uint8_t> msg(300, static_cast<std::uint8_t>(i % 256));
    ASSERT_TRUE((*client)->send(msg).ok());
  }
  for (int i = 0; i < 400 && received.load() < kCount; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(received.load(), kCount);
  EXPECT_TRUE(in_order.load());

  (*client)->close();
  server_side->close();
}

TEST(TcpTransport, PeerCloseFiresDisconnectCallback) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<TcpTransport> server_side;
  std::thread server([&] {
    auto accepted = (*listener)->accept();
    ASSERT_TRUE(accepted.ok());
    server_side = std::move(*accepted);
    server_side->start();
  });
  auto client = TcpTransport::connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.ok());
  server.join();

  std::atomic<int> disconnects{0};
  std::string reason;
  (*client)->set_disconnect_callback([&](util::Error error) {
    reason = error.message;
    disconnects.fetch_add(1);
  });
  (*client)->set_receive_callback([](std::span<const std::uint8_t>) {});
  (*client)->start();

  server_side->close();  // orderly peer shutdown -> recv() == 0 at the client
  for (int i = 0; i < 200 && disconnects.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(disconnects.load(), 1);
  EXPECT_NE(reason.find("peer closed"), std::string::npos) << reason;
  (*client)->close();
}

TEST(TcpTransport, LocalCloseDoesNotFireDisconnectCallback) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<TcpTransport> server_side;
  std::thread server([&] {
    auto accepted = (*listener)->accept();
    ASSERT_TRUE(accepted.ok());
    server_side = std::move(*accepted);
  });
  auto client = TcpTransport::connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.ok());
  server.join();

  std::atomic<int> disconnects{0};
  (*client)->set_disconnect_callback([&](util::Error) { disconnects.fetch_add(1); });
  (*client)->set_receive_callback([](std::span<const std::uint8_t>) {});
  (*client)->start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  (*client)->close();  // deliberate local teardown, not a failure
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(disconnects.load(), 0);
  server_side->close();
}

TEST(TcpTransport, CorruptFrameLengthFiresDisconnectCallback) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<TcpTransport> server_side;
  std::thread server([&] {
    auto accepted = (*listener)->accept();
    ASSERT_TRUE(accepted.ok());
    server_side = std::move(*accepted);
  });

  // A raw socket peer lets us write a length prefix far beyond
  // kMaxFrameBytes -- a corrupt stream no framed sender would produce.
  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*listener)->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(raw, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  server.join();

  std::atomic<int> disconnects{0};
  std::string reason;
  server_side->set_disconnect_callback([&](util::Error error) {
    reason = error.message;
    disconnects.fetch_add(1);
  });
  server_side->set_receive_callback([](std::span<const std::uint8_t>) {});
  server_side->start();

  const std::uint8_t bogus_header[4] = {0xff, 0xff, 0xff, 0xff};  // 4 GiB frame
  ASSERT_EQ(::send(raw, bogus_header, sizeof(bogus_header), 0), 4);
  for (int i = 0; i < 200 && disconnects.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(disconnects.load(), 1);
  EXPECT_FALSE(reason.empty());
  ::close(raw);
  server_side->close();
}

TEST(TcpTransport, SendAfterCloseFails) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.ok());
  std::unique_ptr<TcpTransport> server_side;
  std::thread server([&] {
    auto accepted = (*listener)->accept();
    ASSERT_TRUE(accepted.ok());
    server_side = std::move(*accepted);
  });
  auto client = TcpTransport::connect("127.0.0.1", (*listener)->port());
  ASSERT_TRUE(client.ok());
  server.join();
  (*client)->close();
  EXPECT_FALSE((*client)->send(std::vector<std::uint8_t>{1}).ok());
  server_side->close();
}

TEST(TcpTransport, ConnectToClosedPortFails) {
  // Grab an ephemeral port and close the listener so nothing accepts.
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.ok());
  const auto port = (*listener)->port();
  (*listener)->close();
  auto client = TcpTransport::connect("127.0.0.1", port);
  EXPECT_FALSE(client.ok());
}

}  // namespace
}  // namespace flexran::net
