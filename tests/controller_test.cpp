#include <gtest/gtest.h>

#include "controller/master.h"
#include "controller/rib.h"
#include "controller/task_manager.h"
#include "scenario/testbed.h"

namespace flexran::ctrl {
namespace {

using scenario::Testbed;

stack::UeProfile cqi_ue(int cqi) {
  stack::UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  // Give the hello / event-subscription handshake time to finish before the
  // UE performs RACH, so attach events are observable at the master.
  profile.attach_after_ttis = 10;
  return profile;
}

scenario::EnbSpec spec(lte::EnbId id = 1) {
  scenario::EnbSpec s;
  s.enb.enb_id = id;
  s.enb.cells[0].cell_id = id;
  s.agent.name = "enb-" + std::to_string(id);
  return s;
}

// -------------------------------------------------------------------- RIB --

TEST(Rib, ForestStructureAndLookups) {
  Rib rib;
  AgentNode& agent = rib.agent(1);
  agent.enb_id = 10;
  auto& cell = agent.cells[100];
  auto& ue = cell.ues[70];
  ue.rnti = 70;

  EXPECT_NE(rib.find_agent(1), nullptr);
  EXPECT_EQ(rib.find_agent(2), nullptr);
  ASSERT_NE(rib.find_ue(1, 70), nullptr);
  EXPECT_EQ(rib.find_ue(1, 71), nullptr);
  EXPECT_EQ(rib.find_ue(2, 70), nullptr);
  EXPECT_EQ(rib.ue_count(), 1u);
  EXPECT_EQ(rib.agent_count(), 1u);

  UeNode* mutable_ue = rib.mutable_ue(1, 70);
  ASSERT_NE(mutable_ue, nullptr);
  mutable_ue->stats.wb_cqi = 9;
  EXPECT_EQ(rib.find_ue(1, 70)->stats.wb_cqi, 9);
}

TEST(Rib, ApproxBytesGrowsWithContent) {
  Rib rib;
  const auto empty = rib.approx_bytes();
  AgentNode& agent = rib.agent(1);
  for (lte::Rnti rnti = 1; rnti <= 16; ++rnti) {
    agent.cells[1].ues[rnti].rnti = rnti;
  }
  EXPECT_GT(rib.approx_bytes(), empty + 16 * sizeof(UeNode));
}

// ----------------------------------------------------------- Task manager --

class RecordingApp : public App {
 public:
  RecordingApp(std::string name, int priority, std::vector<std::string>& log)
      : name_(std::move(name)), priority_(priority), log_(&log) {}
  std::string_view name() const override { return name_; }
  int priority() const override { return priority_; }
  void on_cycle(std::int64_t, NorthboundApi&) override { log_->push_back(name_); }
  void on_event(const Event& event, NorthboundApi&) override {
    log_->push_back(name_ + ":" + proto::to_string(event.notification.event));
  }

 private:
  std::string name_;
  int priority_;
  std::vector<std::string>* log_;
};

class NullNorthbound : public NorthboundApi {
 public:
  explicit NullNorthbound(Rib& rib) : rib_(&rib) {}
  std::shared_ptr<const RibSnapshot> rib_snapshot() const override {
    return RibSnapshot::capture(*rib_);
  }
  sim::TimeUs now() const override { return 0; }
  std::int64_t agent_subframe(AgentId) const override { return 0; }
  util::Status send_dl_mac_config(AgentId, const proto::DlMacConfig&) override { return {}; }
  util::Status send_ul_mac_config(AgentId, const proto::UlMacConfig&) override { return {}; }
  util::Status send_handover(AgentId, const proto::HandoverCommand&) override { return {}; }
  util::Status send_abs_config(AgentId, const proto::AbsConfig&) override { return {}; }
  util::Status send_carrier_restriction(AgentId, const proto::CarrierRestriction&) override {
    return {};
  }
  util::Status send_drx_config(AgentId, const proto::DrxConfig&) override { return {}; }
  util::Status send_scell_command(AgentId, const proto::ScellCommand&) override { return {}; }
  util::Status request_stats(AgentId, const proto::StatsRequest&) override { return {}; }
  util::Status subscribe_events(AgentId, std::vector<proto::EventType>, bool) override {
    return {};
  }
  util::Status push_vsf(AgentId, const std::string&, const std::string&,
                        const std::string&) override {
    return {};
  }
  util::Status send_policy(AgentId, const std::string&) override { return {}; }

 private:
  Rib* rib_;
};

TEST(TaskManager, AppsRunInPriorityOrder) {
  Rib rib;
  NullNorthbound api(rib);
  std::vector<std::string> log;
  TaskManager tm({}, nullptr, nullptr);
  RecordingApp monitoring("monitoring", 200, log);
  RecordingApp scheduler("scheduler", 1, log);  // time critical -> first
  tm.add_app(&monitoring, api);
  tm.add_app(&scheduler, api);
  tm.run_cycle(0, api);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "scheduler");
  EXPECT_EQ(log[1], "monitoring");
}

TEST(TaskManager, PauseResumeRemove) {
  Rib rib;
  NullNorthbound api(rib);
  std::vector<std::string> log;
  TaskManager tm({}, nullptr, nullptr);
  RecordingApp app("app", 10, log);
  tm.add_app(&app, api);

  ASSERT_TRUE(tm.set_paused("app", true).ok());
  tm.run_cycle(0, api);
  EXPECT_TRUE(log.empty());
  ASSERT_TRUE(tm.set_paused("app", false).ok());
  tm.run_cycle(1, api);
  EXPECT_EQ(log.size(), 1u);
  tm.remove_app("app");
  tm.run_cycle(2, api);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_FALSE(tm.set_paused("ghost", true).ok());
}

TEST(TaskManager, RecordsSlotTimings) {
  Rib rib;
  NullNorthbound api(rib);
  int updates = 0;
  TaskManager tm({}, [&](std::int64_t) { return static_cast<std::size_t>(++updates); },
                 nullptr);
  for (int i = 0; i < 10; ++i) tm.run_cycle(i, api);
  EXPECT_EQ(tm.cycles_run(), 10);
  EXPECT_EQ(tm.updater_time_us().count(), 10u);
  EXPECT_EQ(tm.apps_time_us().count(), 10u);
  EXPECT_GT(tm.mean_idle_fraction(), 0.5);  // nothing heavy ran
}

// ------------------------------------------------------------ master E2E ---

TEST(MasterEndToEnd, PeriodicStatsPopulateUeNodes) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec());
  const auto rnti = testbed.add_ue(0, cqi_ue(12));
  testbed.run_ttis(60);

  const auto* ue = testbed.master().rib().find_ue(enb.agent_id, rnti);
  ASSERT_NE(ue, nullptr);
  EXPECT_EQ(ue->stats.wb_cqi, 12);
  EXPECT_GT(ue->last_update, 0);
  EXPECT_NEAR(ue->cqi_avg.value(), 12.0, 0.5);
}

TEST(MasterEndToEnd, SubframeSyncTracksAgentTime) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec());
  testbed.run_ttis(100);
  const auto last = testbed.master().agent_subframe(enb.agent_id);
  // Master trails the agent by at most a couple of TTIs at zero latency.
  EXPECT_GT(last, testbed.current_tti() - 3);
  EXPECT_LE(last, testbed.current_tti());
}

TEST(MasterEndToEnd, LatencyDelaysMasterView) {
  Testbed testbed(scenario::per_tti_master_config());
  auto s = spec();
  s.uplink.delay = sim::from_ms(20);
  s.downlink.delay = sim::from_ms(20);
  auto& enb = testbed.add_enb(s);
  testbed.run_ttis(200);
  const auto lag = testbed.current_tti() - testbed.master().agent_subframe(enb.agent_id);
  EXPECT_GE(lag, 20);
  EXPECT_LE(lag, 25);
}

TEST(MasterEndToEnd, EventsDispatchToApps) {
  std::vector<std::string> log;
  Testbed testbed(scenario::per_tti_master_config());
  testbed.master().add_app(std::make_unique<RecordingApp>("watcher", 100, log));
  testbed.add_enb(spec());
  testbed.add_ue(0, cqi_ue(15));
  testbed.run_ttis(60);

  int rach_events = 0;
  int attach_events = 0;
  for (const auto& entry : log) {
    if (entry == "watcher:rach_attempt") ++rach_events;
    if (entry == "watcher:ue_attach") ++attach_events;
  }
  EXPECT_EQ(rach_events, 1);
  EXPECT_EQ(attach_events, 1);
}

TEST(MasterEndToEnd, EchoEstimatesRtt) {
  ctrl::MasterConfig config = scenario::per_tti_master_config();
  config.echo_period_cycles = 50;
  Testbed testbed(config);
  auto s = spec();
  s.uplink.delay = sim::from_ms(10);
  s.downlink.delay = sim::from_ms(10);
  auto& enb = testbed.add_enb(s);
  testbed.run_ttis(300);
  const auto* agent = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(agent, nullptr);
  EXPECT_NEAR(agent->rtt_estimate_us, 20'000.0, 3'000.0);
}

TEST(MasterEndToEnd, PauseAppStopsItsCycles) {
  std::vector<std::string> log;
  Testbed testbed;
  testbed.master().add_app(std::make_unique<RecordingApp>("pausable", 100, log));
  testbed.add_enb(spec());
  testbed.run_ttis(10);
  const auto before = log.size();
  ASSERT_TRUE(testbed.master().pause_app("pausable").ok());
  testbed.run_ttis(10);
  EXPECT_EQ(log.size(), before);
  ASSERT_TRUE(testbed.master().resume_app("pausable").ok());
  testbed.run_ttis(10);
  EXPECT_GT(log.size(), before);
}

TEST(MasterEndToEnd, RxAccountingSeesStatsDominance) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec());
  for (int i = 0; i < 8; ++i) testbed.add_ue(0, cqi_ue(10));
  testbed.run_ttis(200);

  const auto& rx = testbed.master().rx_accounting(enb.agent_id);
  EXPECT_GT(rx.bytes(proto::MessageCategory::stats), rx.bytes(proto::MessageCategory::sync));
  EXPECT_GT(rx.bytes(proto::MessageCategory::sync),
            rx.bytes(proto::MessageCategory::agent_management));
  // Agent tx accounting and master rx accounting must agree.
  const auto& tx = enb.agent->tx_accounting();
  EXPECT_EQ(tx.bytes(proto::MessageCategory::stats), rx.bytes(proto::MessageCategory::stats));
}

TEST(MasterEndToEnd, HotColumnsMirrorUeStats) {
  // The SoA hot-stat columns (docs/wire_fastpath.md) must stay in lockstep
  // with the per-UE tree: populated by stats ingest, row removed on detach.
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec(1));
  testbed.add_enb(spec(2));
  const auto rnti = testbed.add_ue(0, cqi_ue(12));
  testbed.run_ttis(60);

  const auto* agent = testbed.master().rib().find_agent(enb.agent_id);
  ASSERT_NE(agent, nullptr);
  ASSERT_EQ(agent->hot.size(), 1u);
  EXPECT_EQ(agent->hot.rnti[0], rnti);
  EXPECT_EQ(agent->hot.wb_cqi[0], 12);
  const auto* ue = testbed.master().rib().find_ue(enb.agent_id, rnti);
  ASSERT_NE(ue, nullptr);
  EXPECT_EQ(agent->hot.rlc_queue_bytes[0], ue->stats.rlc_queue_bytes);
  EXPECT_NEAR(agent->hot.cqi_avg[0], ue->cqi_avg.value(), 1e-9);

  proto::HandoverCommand command;
  command.rnti = rnti;
  command.source_cell = 1;
  command.target_cell = 2;
  ASSERT_TRUE(testbed.master().send_handover(enb.agent_id, command).ok());
  testbed.run_ttis(10);
  EXPECT_EQ(testbed.master().rib().find_ue(enb.agent_id, rnti), nullptr);
  EXPECT_EQ(agent->hot.size(), 0u);
}

TEST(MasterEndToEnd, RibTracksDetachOnHandoverEvent) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec(1));
  testbed.add_enb(spec(2));
  const auto rnti = testbed.add_ue(0, cqi_ue(12));
  testbed.run_ttis(60);
  ASSERT_NE(testbed.master().rib().find_ue(enb.agent_id, rnti), nullptr);

  proto::HandoverCommand command;
  command.rnti = rnti;
  command.source_cell = 1;
  command.target_cell = 2;
  ASSERT_TRUE(testbed.master().send_handover(enb.agent_id, command).ok());
  testbed.run_ttis(10);
  EXPECT_EQ(testbed.enb(0).data_plane->ue_count(), 0u);
  EXPECT_EQ(testbed.master().rib().find_ue(enb.agent_id, rnti), nullptr);
}

// ---------------------------------------------------------- observability --

TEST(Observability, DisabledByDefaultHasNoInstrumentsOrTraces) {
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec());
  testbed.add_ue(0, cqi_ue(12));
  testbed.run_ttis(50);
  EXPECT_FALSE(testbed.master().obs_enabled());
  EXPECT_EQ(testbed.master().metrics().size(), 0u);
  EXPECT_EQ(testbed.master().cycle_traces().recorded(), 0u);
  EXPECT_EQ(testbed.master().control_latency(enb.agent_id), nullptr);
}

TEST(Observability, CycleTracesRecordEveryStageInline) {
  auto config = scenario::per_tti_master_config();
  config.obs.enabled = true;
  Testbed testbed(std::move(config));
  testbed.add_enb(spec());
  testbed.add_ue(0, cqi_ue(12));
  testbed.run_ttis(100);

  const auto& traces = testbed.master().cycle_traces();
  EXPECT_EQ(traces.recorded(), static_cast<std::uint64_t>(testbed.master().cycles_run()));
  EXPECT_EQ(traces.updater_us().count(), traces.recorded());
  const auto kept = traces.snapshot();
  ASSERT_FALSE(kept.empty());
  // Cycle ids are consecutive, stage timings are sane (non-negative wall
  // time), and the steady per-TTI stats traffic shows up as applied
  // updates.
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].cycle, kept[i - 1].cycle + 1);
  }
  std::uint64_t total_updates = 0;
  for (const auto& trace : kept) {
    EXPECT_GE(trace.updater_us, 0.0);
    EXPECT_GE(trace.event_us, 0.0);
    EXPECT_GE(trace.apps_us, 0.0);
    EXPECT_GE(trace.flush_us, 0.0);
    total_updates += trace.updates_applied;
  }
  EXPECT_GT(total_updates, 0u);
}

TEST(Observability, CycleTracesRecordWithPipelinedWorkers) {
  auto config = scenario::per_tti_master_config();
  config.obs.enabled = true;
  config.task_manager.workers = 2;
  Testbed testbed(std::move(config));
  testbed.add_enb(spec());
  testbed.add_ue(0, cqi_ue(12));
  testbed.run_ttis(100);
  testbed.master().quiesce();

  const auto& traces = testbed.master().cycle_traces();
  // In pipelined mode a cycle's trace completes when its app slot is
  // joined, so the final cycle may still be pending -- everything else
  // must be there.
  EXPECT_GE(traces.recorded() + 1, static_cast<std::uint64_t>(testbed.master().cycles_run()));
  EXPECT_GT(traces.recorded(), 90u);
  std::uint64_t total_updates = 0;
  for (const auto& trace : traces.snapshot()) total_updates += trace.updates_applied;
  EXPECT_GT(total_updates, 0u);
}

TEST(Observability, RegistryExportsMigratedCounters) {
  auto config = scenario::per_tti_master_config();
  config.obs.enabled = true;
  Testbed testbed(std::move(config));
  auto& enb = testbed.add_enb(spec());
  testbed.add_ue(0, cqi_ue(12));
  testbed.run_ttis(100);

  auto& metrics = testbed.master().metrics();
  EXPECT_GT(metrics.size(), 30u);
  const std::string json = metrics.json();
  EXPECT_NE(json.find("\"cycles_run\":"), std::string::npos);
  EXPECT_NE(json.find("\"updates_applied\":"), std::string::npos);
  EXPECT_NE(json.find("signaling_rx_bytes{agent=1,category=stats}"), std::string::npos);
  EXPECT_NE(json.find("\"overload_state\":"), std::string::npos);
  // Probes track the live values, not a snapshot from registration time.
  const auto updates = testbed.master().updates_applied();
  EXPECT_NE(json.find("\"updates_applied\":" + std::to_string(updates)),
            std::string::npos)
      << json;
  // Decode-anomaly accounting (docs/wire_fastpath.md) is exported alongside
  // the hard decode-error counter, so dropped-but-recognised fields (e.g.
  // trailing BSR entries) are visible to operators rather than silent.
  const std::string text = metrics.prometheus_text();
  EXPECT_NE(text.find("proto_decode_anomalies"), std::string::npos) << text;
  EXPECT_NE(text.find("rx_decode_errors"), std::string::npos) << text;
  (void)enb;
}

TEST(Observability, TimestampEchoMeasuresControlLatency) {
  auto config = scenario::per_tti_master_config();
  config.obs.enabled = true;
  Testbed testbed(std::move(config));
  auto s = spec();
  s.uplink.delay = sim::from_ms(5);
  s.downlink.delay = sim::from_ms(5);
  auto& enb = testbed.add_enb(s);
  testbed.add_ue(0, cqi_ue(12));
  testbed.run_ttis(300);

  const auto* latency = testbed.master().control_latency(enb.agent_id);
  ASSERT_NE(latency, nullptr);
  ASSERT_GT(latency->count(), 0u);
  // Round trip crosses the 5 ms downlink and the 5 ms uplink, so every
  // sample is at least 10 ms; the cycle-boundary wait keeps it bounded.
  EXPECT_GE(latency->p50(), 10'000.0);
  EXPECT_LE(latency->p50(), 40'000.0);
}

TEST(Observability, NoLatencySamplesAtZeroDelayWithoutEnable) {
  // The echo only runs when the master stamps ts_us, i.e. never when obs
  // is off -- agents on a disabled master never see a timestamp to echo.
  Testbed testbed(scenario::per_tti_master_config());
  auto& enb = testbed.add_enb(spec());
  testbed.run_ttis(100);
  EXPECT_EQ(testbed.master().control_latency(enb.agent_id), nullptr);
}

}  // namespace
}  // namespace flexran::ctrl
