#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "lte/tables.h"
#include "stack/enodeb.h"
#include "stack/epc.h"
#include "stack/rlc.h"

namespace flexran::stack {
namespace {

using lte::Rnti;

// -------------------------------------------------------------------- RLC --

TEST(Rlc, EnqueueDequeueWithOverhead) {
  RlcQueue queue;
  queue.enqueue(lte::kDefaultDrb, 1000);
  EXPECT_EQ(queue.total_bytes(), 1000u);
  // 1000 app bytes require 1000*8*1.08 bits.
  const auto drained = queue.dequeue(queue.bits_needed());
  EXPECT_EQ(drained, 1000u);
  EXPECT_TRUE(queue.empty());
}

TEST(Rlc, PartialDequeueSegmentsPackets) {
  RlcQueue queue;
  queue.enqueue(lte::kDefaultDrb, 1000);
  const auto first = queue.dequeue(4000);  // ~462 bytes of budget
  EXPECT_GT(first, 400u);
  EXPECT_LT(first, 500u);
  EXPECT_EQ(queue.total_bytes(), 1000u - first);
  const auto rest = queue.dequeue(1'000'000);
  EXPECT_EQ(first + rest, 1000u);
}

TEST(Rlc, SrbDrainsBeforeDrb) {
  RlcQueue queue;
  queue.enqueue(lte::kDefaultDrb, 500);
  queue.enqueue(lte::kSrb1, 100);
  // Budget for ~150 bytes: SRB (lcid 1) must drain first.
  (void)queue.dequeue(150 * 9);
  EXPECT_EQ(queue.bytes_for_lcid(lte::kSrb1), 0u);
  EXPECT_GT(queue.bytes_for_lcid(lte::kDefaultDrb), 0u);
}

TEST(Rlc, LcGroupAccounting) {
  RlcQueue queue;
  queue.enqueue(lte::kSrb1, 100);
  queue.enqueue(lte::kDefaultDrb, 900);
  EXPECT_EQ(queue.bytes_for_lc_group(0), 100u);
  EXPECT_EQ(queue.bytes_for_lc_group(2), 900u);
  EXPECT_EQ(queue.bytes_for_lc_group(1), 0u);
}

TEST(Rlc, DequeueLcidTouchesOnlyThatChannel) {
  RlcQueue queue;
  queue.enqueue(lte::kSrb1, 100);
  queue.enqueue(lte::kDefaultDrb, 100);
  EXPECT_EQ(queue.dequeue_lcid(lte::kSrb1, 1'000'000), 100u);
  EXPECT_EQ(queue.bytes_for_lcid(lte::kDefaultDrb), 100u);
}

// -------------------------------------------------------------- test rig ---

/// Listener that records events and runs a pluggable per-TTI scheduler.
class TestListener : public EnodebDataPlane::Listener {
 public:
  std::function<void(std::int64_t)> scheduler;
  std::vector<Rnti> rachs;
  std::vector<Rnti> attached;
  std::vector<Rnti> detached;
  std::vector<Rnti> scheduling_requests;

  void on_subframe_start(std::int64_t subframe) override {
    if (scheduler) scheduler(subframe);
  }
  void on_rach(Rnti rnti, std::int64_t) override { rachs.push_back(rnti); }
  void on_ue_attached(Rnti rnti, std::int64_t) override { attached.push_back(rnti); }
  void on_ue_detached(Rnti rnti, std::int64_t) override { detached.push_back(rnti); }
  void on_scheduling_request(Rnti rnti, std::int64_t) override {
    scheduling_requests.push_back(rnti);
  }
};

lte::EnbConfig default_enb(lte::EnbId id = 1) {
  lte::EnbConfig config;
  config.enb_id = id;
  config.cells[0].cell_id = id;
  return config;
}

UeProfile fixed_cqi_ue(int cqi, int ul_cqi = 8) {
  UeProfile profile;
  profile.dl_channel = std::make_unique<phy::FixedCqiChannel>(cqi);
  profile.ul_cqi = ul_cqi;
  return profile;
}

/// Simple greedy scheduler used by the data-plane tests: gives all PRBs to
/// the first UE that needs them (DL) and all UL PRBs to the first UE with
/// UL data.
void greedy_schedule(EnodebDataPlane& enb, std::int64_t subframe) {
  lte::SchedulingDecision decision;
  decision.cell_id = enb.cell_id();
  decision.subframe = subframe;
  const int prbs = enb.config().cells[0].dl_prbs();
  for (const auto& info : enb.scheduler_view()) {
    if (decision.dl.empty() && (info.dl_queue_bytes > 0 || info.pending_dl_retx > 0)) {
      lte::DlDci dci;
      dci.rnti = info.rnti;
      dci.rbs.set_range(0, prbs);
      dci.mcs = lte::cqi_to_mcs(std::max(info.cqi, 1));
      decision.dl.push_back(dci);
    }
    if (decision.ul.empty() && info.ul_buffer_bytes > 0) {
      lte::UlDci dci;
      dci.rnti = info.rnti;
      dci.rbs.set_range(0, prbs);
      dci.mcs = lte::cqi_to_mcs(std::max(info.ul_cqi, 1));
      decision.ul.push_back(dci);
    }
  }
  if (!decision.empty()) {
    ASSERT_TRUE(enb.apply_scheduling_decision(decision).ok());
  }
}

/// Drives subframe_begin/subframe_end for `ttis` TTIs.
void run_ttis(sim::Simulator& sim, EnodebDataPlane& enb, int ttis) {
  for (int i = 0; i < ttis; ++i) {
    const std::int64_t subframe = sim.current_tti() + 1;
    sim.run_until(subframe * sim::kTtiUs);
    enb.subframe_begin(subframe);
    enb.subframe_end(subframe);
  }
}

// ---------------------------------------------------------------- attach ---

TEST(Enodeb, UeAttachesWhenScheduled) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;
  listener.scheduler = [&](std::int64_t sf) { greedy_schedule(enb, sf); };
  enb.set_listener(&listener);

  const Rnti rnti = enb.add_ue(fixed_cqi_ue(15));
  EXPECT_EQ(enb.ue(rnti)->rrc_state, RrcState::idle);
  run_ttis(simulator, enb, 20);

  ASSERT_EQ(listener.rachs.size(), 1u);
  ASSERT_EQ(listener.attached.size(), 1u);
  EXPECT_EQ(listener.attached[0], rnti);
  EXPECT_TRUE(enb.ue(rnti)->connected());
}

TEST(Enodeb, UeNeverAttachesWithoutScheduler) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;  // no scheduler
  enb.set_listener(&listener);
  const Rnti rnti = enb.add_ue(fixed_cqi_ue(15));
  run_ttis(simulator, enb, 100);
  EXPECT_FALSE(enb.ue(rnti)->connected());
  EXPECT_TRUE(listener.attached.empty());
}

TEST(Enodeb, AttachTimesOutAndRetriesRach) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;
  enb.set_listener(&listener);
  enb.add_ue(fixed_cqi_ue(15));
  run_ttis(simulator, enb, static_cast<int>(kAttachTimeoutTtis) + 100);
  EXPECT_GE(listener.rachs.size(), 2u);  // initial RACH plus at least one retry
}

TEST(Enodeb, RntiAssignmentIsUniqueAndStable) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  const Rnti a = enb.add_ue(fixed_cqi_ue(10));
  const Rnti b = enb.add_ue(fixed_cqi_ue(10));
  EXPECT_NE(a, b);
  EXPECT_NE(a, lte::kInvalidRnti);
  EXPECT_EQ(enb.ue_count(), 2u);
  ASSERT_TRUE(enb.remove_ue(a).ok());
  EXPECT_EQ(enb.ue_count(), 1u);
  EXPECT_FALSE(enb.remove_ue(a).ok());
}

// ------------------------------------------------------------- data flow ---

TEST(Enodeb, DownlinkDeliveryAfterHarqDelay) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;
  listener.scheduler = [&](std::int64_t sf) { greedy_schedule(enb, sf); };
  enb.set_listener(&listener);
  std::uint64_t delivered = 0;
  enb.set_delivery_callback([&](Rnti, std::uint32_t bytes, lte::Direction dir) {
    if (dir == lte::Direction::downlink) delivered += bytes;
  });

  const Rnti rnti = enb.add_ue(fixed_cqi_ue(15));
  run_ttis(simulator, enb, 20);
  const std::uint64_t after_attach = delivered;

  enb.enqueue_dl(rnti, lte::kDefaultDrb, 3000);
  // One TTI to transmit + 4 TTIs HARQ feedback delay.
  run_ttis(simulator, enb, 2);
  EXPECT_EQ(delivered, after_attach);  // not yet credited
  run_ttis(simulator, enb, 4);
  EXPECT_EQ(delivered - after_attach, 3000u);
  EXPECT_EQ(enb.ue(rnti)->dl_queue.total_bytes(), 0u);
}

TEST(Enodeb, DownlinkThroughputMatchesCalibration) {
  // Saturated CQI-15 UE on 50 PRBs must see ~25 Mb/s of application
  // throughput (Fig. 6b's downlink speedtest).
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;
  listener.scheduler = [&](std::int64_t sf) { greedy_schedule(enb, sf); };
  enb.set_listener(&listener);
  std::uint64_t delivered = 0;
  enb.set_delivery_callback([&](Rnti, std::uint32_t bytes, lte::Direction dir) {
    if (dir == lte::Direction::downlink) delivered += bytes;
  });

  const Rnti rnti = enb.add_ue(fixed_cqi_ue(15));
  run_ttis(simulator, enb, 20);
  delivered = 0;
  const int kTtis = 2000;
  for (int i = 0; i < kTtis; ++i) {
    if (enb.ue(rnti)->dl_queue.total_bytes() < 100'000) {
      enb.enqueue_dl(rnti, lte::kDefaultDrb, 50'000);
    }
    run_ttis(simulator, enb, 1);
  }
  const double mbps = static_cast<double>(delivered) * 8.0 / (kTtis / 1000.0) / 1e6;
  EXPECT_GT(mbps, 21.0);
  EXPECT_LT(mbps, 27.0);
}

TEST(Enodeb, AggressiveMcsTriggersHarqRetransmissions) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb(), nullptr, /*seed=*/3);
  TestListener listener;
  // Scheduler that deliberately overshoots MCS by 2 (aggressive link
  // adaptation): expect NACKs, retransmissions, and eventual delivery.
  listener.scheduler = [&](std::int64_t sf) {
    lte::SchedulingDecision decision;
    decision.cell_id = enb.cell_id();
    decision.subframe = sf;
    for (const auto& info : enb.scheduler_view()) {
      if (info.dl_queue_bytes == 0 && info.pending_dl_retx == 0) continue;
      lte::DlDci dci;
      dci.rnti = info.rnti;
      dci.rbs.set_range(0, 50);
      dci.mcs = std::min(lte::cqi_to_mcs(info.cqi) + 2, lte::kMaxMcs);
      decision.dl.push_back(dci);
      break;
    }
    if (!decision.empty()) {
      ASSERT_TRUE(enb.apply_scheduling_decision(decision).ok());
    }
  };
  enb.set_listener(&listener);
  const Rnti rnti = enb.add_ue(fixed_cqi_ue(8));
  run_ttis(simulator, enb, 20);
  for (int i = 0; i < 1000; ++i) {
    if (enb.ue(rnti)->dl_queue.total_bytes() < 20'000) {
      enb.enqueue_dl(rnti, lte::kDefaultDrb, 20'000);
    }
    run_ttis(simulator, enb, 1);
  }
  const UeContext* ue = enb.ue(rnti);
  ASSERT_NE(ue, nullptr);
  EXPECT_TRUE(ue->connected());
  EXPECT_GT(ue->dl_blocks_nacked, 10u);
  EXPECT_GT(ue->dl_blocks_acked, 10u);
}

TEST(Enodeb, UplinkFlowWithSchedulingRequest) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;
  listener.scheduler = [&](std::int64_t sf) { greedy_schedule(enb, sf); };
  enb.set_listener(&listener);
  std::uint64_t ul_delivered = 0;
  enb.set_delivery_callback([&](Rnti, std::uint32_t bytes, lte::Direction dir) {
    if (dir == lte::Direction::uplink) ul_delivered += bytes;
  });

  const Rnti rnti = enb.add_ue(fixed_cqi_ue(15, /*ul_cqi=*/8));
  run_ttis(simulator, enb, 20);
  ASSERT_TRUE(enb.ue(rnti)->connected());

  enb.enqueue_ul(rnti, 5000);
  EXPECT_EQ(listener.scheduling_requests.size(), 1u);
  run_ttis(simulator, enb, 20);
  EXPECT_EQ(ul_delivered, 5000u);
  EXPECT_EQ(enb.ue(rnti)->ul_bytes_received, 5000u);
}

// -------------------------------------------------------------- decisions --

TEST(Enodeb, RejectsDecisionForWrongSubframe) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;
  enb.set_listener(&listener);
  enb.add_ue(fixed_cqi_ue(15));
  run_ttis(simulator, enb, 2);
  lte::SchedulingDecision decision;
  decision.cell_id = enb.cell_id();
  decision.subframe = enb.current_subframe() + 5;  // future subframe
  EXPECT_FALSE(enb.apply_scheduling_decision(decision).ok());
  EXPECT_EQ(enb.grants_rejected(), 1u);
}

TEST(Enodeb, RejectsOverlappingAllocations) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;
  TestListener attach_listener;
  attach_listener.scheduler = [&](std::int64_t sf) { greedy_schedule(enb, sf); };
  enb.set_listener(&attach_listener);
  const Rnti a = enb.add_ue(fixed_cqi_ue(15));
  const Rnti b = enb.add_ue(fixed_cqi_ue(15));
  run_ttis(simulator, enb, 30);
  ASSERT_TRUE(enb.ue(a)->connected());
  ASSERT_TRUE(enb.ue(b)->connected());
  enb.set_listener(&listener);  // stop auto-scheduling

  enb.enqueue_dl(a, lte::kDefaultDrb, 1000);
  enb.enqueue_dl(b, lte::kDefaultDrb, 1000);
  run_ttis(simulator, enb, 1);
  const auto rejected_before = enb.grants_rejected();

  lte::SchedulingDecision decision;
  decision.cell_id = enb.cell_id();
  decision.subframe = enb.current_subframe();
  lte::DlDci dci_a;
  dci_a.rnti = a;
  dci_a.rbs.set_range(0, 30);
  dci_a.mcs = 28;
  lte::DlDci dci_b;
  dci_b.rnti = b;
  dci_b.rbs.set_range(20, 30);  // overlaps PRBs 20..29
  dci_b.mcs = 28;
  decision.dl = {dci_a, dci_b};
  ASSERT_TRUE(enb.apply_scheduling_decision(decision).ok());
  EXPECT_EQ(enb.grants_rejected(), rejected_before + 1);
  // Only UE a transmitted.
  EXPECT_EQ(enb.dl_prbs_used_last_tti(), 30u);
}

TEST(Enodeb, AbsMutingRejectsDownlink) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;
  std::uint64_t scheduled_subframes = 0;
  listener.scheduler = [&](std::int64_t sf) {
    if (enb.muted_in(sf)) return;  // a well-behaved eICIC scheduler skips ABS
    greedy_schedule(enb, sf);
    ++scheduled_subframes;
  };
  enb.set_listener(&listener);
  enb.configure_abs(lte::AbsPattern::per_frame(4), /*mute=*/true);

  const Rnti rnti = enb.add_ue(fixed_cqi_ue(15));
  run_ttis(simulator, enb, 40);
  ASSERT_TRUE(enb.ue(rnti)->connected());

  // A rogue decision during an ABS must be rejected by the data plane.
  while (!enb.is_abs(enb.current_subframe() + 1)) run_ttis(simulator, enb, 1);
  run_ttis(simulator, enb, 1);
  ASSERT_TRUE(enb.muted_in(enb.current_subframe()));
  lte::SchedulingDecision decision;
  decision.cell_id = enb.cell_id();
  decision.subframe = enb.current_subframe();
  lte::DlDci dci;
  dci.rnti = rnti;
  dci.rbs.set_range(0, 10);
  dci.mcs = 10;
  decision.dl.push_back(dci);
  enb.enqueue_dl(rnti, lte::kDefaultDrb, 100);
  EXPECT_FALSE(enb.apply_scheduling_decision(decision).ok());
}

// ------------------------------------------------------------------ stats --

TEST(Enodeb, StatsReportsReflectState) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;
  listener.scheduler = [&](std::int64_t sf) { greedy_schedule(enb, sf); };
  enb.set_listener(&listener);
  const Rnti rnti = enb.add_ue(fixed_cqi_ue(12));
  run_ttis(simulator, enb, 20);
  enb.set_listener(nullptr);  // freeze scheduling so the queue persists

  enb.enqueue_dl(rnti, lte::kDefaultDrb, 7777);
  run_ttis(simulator, enb, 1);
  const auto stats = enb.ue_stats(rnti);
  EXPECT_EQ(stats.rnti, rnti);
  EXPECT_EQ(stats.rlc_queue_bytes, 7777u);
  EXPECT_EQ(stats.bsr_bytes[2], 7777u);  // DRB -> LCG 2
  EXPECT_EQ(stats.wb_cqi, 12);

  const auto cell = enb.cell_stats();
  EXPECT_EQ(cell.cell_id, enb.cell_id());
  EXPECT_EQ(cell.active_ues, 1u);
}

TEST(Enodeb, SchedulerViewExposesConnectedUes) {
  sim::Simulator simulator;
  EnodebDataPlane enb(simulator, default_enb());
  TestListener listener;
  listener.scheduler = [&](std::int64_t sf) { greedy_schedule(enb, sf); };
  enb.set_listener(&listener);
  const Rnti rnti = enb.add_ue(fixed_cqi_ue(9));
  run_ttis(simulator, enb, 20);
  enb.enqueue_dl(rnti, lte::kDefaultDrb, 500);
  enb.set_listener(nullptr);
  run_ttis(simulator, enb, 1);

  const auto view = enb.scheduler_view();
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].rnti, rnti);
  EXPECT_TRUE(view[0].connected);
  EXPECT_EQ(view[0].dl_queue_bytes, 500u);
  EXPECT_EQ(view[0].cqi, 9);
  EXPECT_GT(view[0].dl_bits_needed, 500 * 8);
}

// ------------------------------------------------------------ interference --

TEST(Enodeb, InterferenceModeCqiRespondsToNeighborActivity) {
  sim::Simulator simulator;
  phy::RadioEnvironment env;
  EnodebDataPlane macro(simulator, default_enb(1), &env);
  EnodebDataPlane pico(simulator, default_enb(2), &env);

  TestListener macro_listener;
  macro_listener.scheduler = [&](std::int64_t sf) { greedy_schedule(macro, sf); };
  macro.set_listener(&macro_listener);
  TestListener pico_listener;
  pico_listener.scheduler = [&](std::int64_t sf) { greedy_schedule(pico, sf); };
  pico.set_listener(&pico_listener);

  // Macro UE near its tower; pico UE at the cell edge, hammered by the macro.
  UeProfile macro_ue;
  macro_ue.radio_profile = phy::UeRadioProfile::from_distances(
      1, phy::kMacroTxPowerDbm, 0.1, {{2, {phy::kPicoTxPowerDbm, 0.5}}});
  const Rnti m = macro.add_ue(std::move(macro_ue));
  UeProfile pico_ue;
  pico_ue.radio_profile = phy::UeRadioProfile::from_distances(
      2, phy::kPicoTxPowerDbm, 0.08, {{1, {phy::kMacroTxPowerDbm, 0.15}}});
  const Rnti p = pico.add_ue(std::move(pico_ue));

  auto run_both = [&](int ttis) {
    for (int i = 0; i < ttis; ++i) {
      const std::int64_t sf = simulator.current_tti() + 1;
      simulator.run_until(sf * sim::kTtiUs);
      macro.subframe_begin(sf);  // macro first: pico sees macro's activity
      pico.subframe_begin(sf);
      macro.subframe_end(sf);
      pico.subframe_end(sf);
    }
  };

  run_both(60);
  ASSERT_TRUE(pico.ue(p)->connected());

  // Saturate the macro: its cell transmits every subframe.
  for (int i = 0; i < 50; ++i) macro.enqueue_dl(m, lte::kDefaultDrb, 40000);
  run_both(5);
  const int cqi_under_interference = pico.ue(p)->reported_cqi;
  const int cqi_protected = pico.ue(p)->reported_cqi_protected;
  EXPECT_LT(cqi_under_interference, 5);
  EXPECT_GT(cqi_protected, 10);

  // Macro drains and goes quiet; the pico UE's CQI recovers.
  run_both(3000);
  EXPECT_EQ(macro.ue(m)->dl_queue.total_bytes(), 0u);
  run_both(3);
  EXPECT_GT(pico.ue(p)->reported_cqi, 10);
}

// -------------------------------------------------------------------- EPC --

TEST(Epc, RoutesDownlinkAndMovesBearers) {
  sim::Simulator simulator;
  EnodebDataPlane enb1(simulator, default_enb(1));
  EnodebDataPlane enb2(simulator, default_enb(2));
  const Rnti r1 = enb1.add_ue(fixed_cqi_ue(10));
  const Rnti r2 = enb2.add_ue(fixed_cqi_ue(10));

  EpcStub epc;
  epc.register_bearer(100, &enb1, r1);
  ASSERT_TRUE(epc.downlink(100, 500).ok());
  EXPECT_EQ(enb1.ue(r1)->dl_queue.total_bytes(), 500u);
  EXPECT_FALSE(epc.downlink(999, 500).ok());

  ASSERT_TRUE(epc.move_bearer(100, &enb2, r2).ok());
  ASSERT_TRUE(epc.downlink(100, 300).ok());
  EXPECT_EQ(enb2.ue(r2)->dl_queue.total_bytes(), 300u);
  EXPECT_EQ(epc.downlink_bytes(), 800u);
}

TEST(Epc, HandoverMovesUeContext) {
  sim::Simulator simulator;
  EnodebDataPlane source(simulator, default_enb(1));
  EnodebDataPlane target(simulator, default_enb(2));
  TestListener source_listener;
  source_listener.scheduler = [&](std::int64_t sf) { greedy_schedule(source, sf); };
  source.set_listener(&source_listener);
  const Rnti rnti = source.add_ue(fixed_cqi_ue(11));
  run_ttis(simulator, source, 20);
  ASSERT_TRUE(source.ue(rnti)->connected());

  auto moved = source.trigger_handover(rnti);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(source.ue_count(), 0u);
  ASSERT_EQ(source_listener.detached.size(), 1u);

  const Rnti new_rnti = target.add_ue(std::move(*moved));
  EXPECT_EQ(target.ue_count(), 1u);
  EXPECT_EQ(target.ue(new_rnti)->config.primary_cell, target.cell_id());
}

}  // namespace
}  // namespace flexran::stack
