#include <gtest/gtest.h>

#include "lte/abs.h"
#include "lte/allocation.h"
#include "lte/harq.h"
#include "lte/tables.h"
#include "lte/types.h"

namespace flexran::lte {
namespace {

// ---------------------------------------------------------------- Tables --

TEST(Tables, BandwidthToPrbs) {
  EXPECT_EQ(prb_count_for_bandwidth_mhz(1.4), 6);
  EXPECT_EQ(prb_count_for_bandwidth_mhz(5.0), 25);
  EXPECT_EQ(prb_count_for_bandwidth_mhz(10.0), 50);
  EXPECT_EQ(prb_count_for_bandwidth_mhz(20.0), 100);
}

TEST(Tables, CqiEfficiencyEndpoints) {
  EXPECT_DOUBLE_EQ(cqi_efficiency(0), 0.0);
  EXPECT_DOUBLE_EQ(cqi_efficiency(1), 0.1523);
  EXPECT_DOUBLE_EQ(cqi_efficiency(15), 5.5547);
  // Clamping.
  EXPECT_DOUBLE_EQ(cqi_efficiency(99), 5.5547);
  EXPECT_DOUBLE_EQ(cqi_efficiency(-1), 0.0);
}

class CqiSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(AllCqis, CqiSweep, ::testing::Range(1, 16));

TEST_P(CqiSweep, EfficiencyIsStrictlyIncreasing) {
  const int cqi = GetParam();
  if (cqi > 1) {
    EXPECT_GT(cqi_efficiency(cqi), cqi_efficiency(cqi - 1));
  }
}

TEST_P(CqiSweep, McsMappingIsMonotonic) {
  const int cqi = GetParam();
  EXPECT_GE(cqi_to_mcs(cqi), 0);
  EXPECT_LE(cqi_to_mcs(cqi), kMaxMcs);
  if (cqi > 1) {
    EXPECT_GT(cqi_to_mcs(cqi), cqi_to_mcs(cqi - 1));
  }
}

TEST_P(CqiSweep, SinrRoundTripsToSameCqi) {
  const int cqi = GetParam();
  const double sinr = cqi_to_sinr_db(cqi);
  EXPECT_EQ(sinr_db_to_cqi(sinr), cqi) << "sinr=" << sinr;
}

TEST_P(CqiSweep, McsEfficiencyMatchesCqiTableAtMappedPoints) {
  const int cqi = GetParam();
  EXPECT_NEAR(mcs_efficiency(cqi_to_mcs(cqi)), cqi_efficiency(cqi), 1e-9);
}

TEST(Tables, McsEfficiencyMonotonic) {
  for (int mcs = 1; mcs <= kMaxMcs; ++mcs) {
    EXPECT_GE(mcs_efficiency(mcs), mcs_efficiency(mcs - 1)) << "mcs=" << mcs;
  }
}

TEST(Tables, TbsScalesWithPrbs) {
  EXPECT_EQ(tbs_bits(cqi_to_mcs(15), 0), 0);
  EXPECT_EQ(tbs_bits(-1, 50), 0);
  const auto half = tbs_bits_for_cqi(15, 25);
  const auto full = tbs_bits_for_cqi(15, 50);
  EXPECT_NEAR(static_cast<double>(full), 2.0 * static_cast<double>(half), 2.0);
}

TEST(Tables, FullBandwidthCqi15MatchesCalibration) {
  // 50 PRB at CQI 15 should give ~27.7 Mb/s at PHY (25 Mb/s app-level after
  // protocol overhead, matching Fig. 6b).
  const auto bits_per_tti = tbs_bits_for_cqi(15, 50);
  const double mbps = static_cast<double>(bits_per_tti) / 1000.0;
  EXPECT_NEAR(mbps, 27.8, 0.5);
}

TEST(Tables, CategoryCaps) {
  EXPECT_EQ(category_max_tbs_bits(4), 150752);
  EXPECT_LT(category_max_tbs_bits(1), category_max_tbs_bits(4));
}

TEST(Tables, BlerOperatingPoints) {
  const int cqi = 10;
  const int matched = cqi_to_mcs(cqi);
  EXPECT_DOUBLE_EQ(bler_for_mcs_at_cqi(matched, cqi), 0.10);
  EXPECT_LT(bler_for_mcs_at_cqi(matched - 2, cqi), 0.05);
  EXPECT_GT(bler_for_mcs_at_cqi(matched + 2, cqi), 0.5);
  EXPECT_DOUBLE_EQ(bler_for_mcs_at_cqi(matched, 0), 1.0);
}

// ------------------------------------------------------------ Allocation --

TEST(RbAllocation, SetAndCount) {
  RbAllocation alloc;
  EXPECT_TRUE(alloc.empty());
  alloc.set_range(10, 5);
  EXPECT_EQ(alloc.count(), 5);
  EXPECT_TRUE(alloc.test(12));
  EXPECT_FALSE(alloc.test(15));
}

TEST(RbAllocation, OverlapDetection) {
  RbAllocation a;
  a.set_range(0, 10);
  RbAllocation b;
  b.set_range(10, 10);
  EXPECT_FALSE(a.overlaps(b));
  b.set(5);
  EXPECT_TRUE(a.overlaps(b));
}

TEST(RbAllocation, WireWordsRoundTrip) {
  RbAllocation alloc;
  alloc.set(0);
  alloc.set(63);
  alloc.set(64);
  alloc.set(99);
  const auto restored = RbAllocation::from_words(alloc.word(0), alloc.word(1));
  EXPECT_EQ(restored, alloc);
  EXPECT_EQ(restored.count(), 4);
}

TEST(DlDci, TbsUsesAllocationSize) {
  DlDci dci;
  dci.rnti = 0x4601;
  dci.mcs = cqi_to_mcs(10);
  dci.rbs.set_range(0, 50);
  EXPECT_EQ(dci.tbs(), tbs_bits_for_cqi(10, 50));
}

// ------------------------------------------------------------------- ABS --

TEST(AbsPattern, PerFramePattern) {
  const auto pattern = AbsPattern::per_frame(4);
  EXPECT_EQ(pattern.abs_count(), 16);  // 4 per frame x 4 frames in 40
  EXPECT_TRUE(pattern.is_abs(0));
  EXPECT_TRUE(pattern.is_abs(3));
  EXPECT_FALSE(pattern.is_abs(4));
  EXPECT_TRUE(pattern.is_abs(10));   // repeats every frame
  EXPECT_TRUE(pattern.is_abs(403));  // wraps modulo 40
  EXPECT_FALSE(pattern.is_abs(409));
}

TEST(AbsPattern, NonePatternHasNoAbs) {
  const auto pattern = AbsPattern::none();
  EXPECT_FALSE(pattern.any());
  for (int sf = 0; sf < 40; ++sf) EXPECT_FALSE(pattern.is_abs(sf));
}

TEST(AbsPattern, WireRoundTrip) {
  auto pattern = AbsPattern::per_frame(2);
  pattern.set(39);
  const auto restored = AbsPattern::from_bits(pattern.to_bits());
  EXPECT_EQ(restored, pattern);
}

// ------------------------------------------------------------------ HARQ --

TEST(Harq, AllocatesAllEightProcesses) {
  HarqEntity harq;
  for (int i = 0; i < kNumHarqProcesses; ++i) {
    auto pid = harq.find_free_process();
    ASSERT_TRUE(pid.has_value());
    harq.start(*pid, 1000, 10, 5, i);
  }
  EXPECT_FALSE(harq.find_free_process().has_value());
}

TEST(Harq, AckFreesProcessAndReturnsBits) {
  HarqEntity harq;
  const auto pid = harq.find_free_process().value();
  harq.start(pid, 4321, 10, 5, 0);
  EXPECT_EQ(harq.ack(pid), 4321);
  EXPECT_TRUE(harq.find_free_process().has_value());
  EXPECT_FALSE(harq.process(pid).active);
}

TEST(Harq, NackKeepsProcessForRetransmission) {
  HarqEntity harq;
  const auto pid = harq.find_free_process().value();
  harq.start(pid, 1000, 10, 5, 0);
  EXPECT_TRUE(harq.nack(pid));
  EXPECT_TRUE(harq.process(pid).active);
  EXPECT_EQ(harq.pending_retransmissions(), 1);
  EXPECT_EQ(harq.process(pid).retx_count, 1);
}

TEST(Harq, DropsAfterMaxRetransmissions) {
  HarqEntity harq;
  const auto pid = harq.find_free_process().value();
  harq.start(pid, 1000, 10, 5, 0);
  for (int i = 0; i < kMaxHarqRetransmissions; ++i) {
    EXPECT_TRUE(harq.nack(pid));
    harq.start(pid, 1000, 10, 5, i + 1);
  }
  EXPECT_FALSE(harq.nack(pid));  // exceeded -> dropped
  EXPECT_EQ(harq.dropped_blocks(), 1);
  EXPECT_FALSE(harq.process(pid).active);
}

TEST(Harq, RetransmissionKeepsOriginalBlockSize) {
  HarqEntity harq;
  const auto pid = harq.find_free_process().value();
  harq.start(pid, 5000, 12, 10, 0);
  harq.nack(pid);
  // Retransmission start must not overwrite the block.
  harq.start(pid, 9999, 1, 1, 8);
  EXPECT_EQ(harq.process(pid).tb_bits, 5000);
  EXPECT_EQ(harq.ack(pid), 5000);
}

// ----------------------------------------------------------------- Types --

TEST(Types, CellConfigPrbs) {
  CellConfig cell;
  cell.bandwidth_mhz = 10.0;
  EXPECT_EQ(cell.dl_prbs(), 50);
  cell.bandwidth_mhz = 20.0;
  EXPECT_EQ(cell.dl_prbs(), 100);
}

}  // namespace
}  // namespace flexran::lte
