#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexran::obs {
namespace {

// ---------------------------------------------------------- instruments --

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetReadRoundTrip) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.25);
  EXPECT_EQ(g.value(), 3.25);
  g.set(-1e9);
  EXPECT_EQ(g.value(), -1e9);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpper) {
  // Bucket i counts samples in (bounds[i-1], bounds[i]]; the boundary
  // sample lands in the bucket it bounds, one past it in the next.
  Histogram h({10.0, 20.0, 40.0});
  h.observe(10.0);  // bucket 0 (<= 10)
  h.observe(10.1);  // bucket 1
  h.observe(20.0);  // bucket 1 (<= 20)
  h.observe(40.0);  // bucket 2
  h.observe(41.0);  // overflow bucket
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0 + 10.1 + 20.0 + 40.0 + 41.0);
}

TEST(HistogramTest, QuantileOnEmptyIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, QuantileSingleSample) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(50.0);
  // Every quantile of a one-sample distribution selects that sample's
  // bucket; the estimate must stay within the bucket's range.
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_GE(h.quantile(q), 10.0) << "q=" << q;
    EXPECT_LE(h.quantile(q), 100.0) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileUniformSpread) {
  // 100 samples uniformly over (0, 100]; with bounds at every 10 the
  // nearest-rank + interpolation estimate should track q * 100 closely.
  Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_NEAR(h.p50(), 50.0, 10.0);
  EXPECT_NEAR(h.p95(), 95.0, 10.0);
  EXPECT_NEAR(h.p99(), 99.0, 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, OverflowQuantileClampsToLastBound) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.observe(1000.0);
  // The histogram cannot resolve beyond its last bound.
  EXPECT_EQ(h.p50(), 2.0);
  EXPECT_EQ(h.p99(), 2.0);
}

TEST(HistogramTest, ExponentialBounds) {
  const auto bounds = exponential_bounds(250.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 250.0);
  EXPECT_DOUBLE_EQ(bounds[1], 500.0);
  EXPECT_DOUBLE_EQ(bounds[2], 1000.0);
  EXPECT_DOUBLE_EQ(bounds[3], 2000.0);
}

TEST(LabeledTest, RendersLabelBlock) {
  EXPECT_EQ(labeled("x", {}), "x");
  EXPECT_EQ(labeled("x", {{"a", "1"}}), "x{a=1}");
  EXPECT_EQ(labeled("x", {{"a", "1"}, {"b", "two"}}), "x{a=1,b=two}");
}

// ------------------------------------------------------------- registry --

TEST(RegistryTest, GetOrCreateReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("c");
  Counter& b = registry.counter("c");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(registry.find_counter("c")->value(), 1u);

  Histogram& h1 = registry.histogram("h", {1.0, 2.0});
  Histogram& h2 = registry.histogram("h", {9.0});  // bounds ignored on reuse
  EXPECT_EQ(&h1, &h2);
  ASSERT_EQ(h2.bounds().size(), 2u);

  EXPECT_EQ(registry.find_counter("missing"), nullptr);
  EXPECT_EQ(registry.find_gauge("missing"), nullptr);
  EXPECT_EQ(registry.find_histogram("missing"), nullptr);
}

TEST(RegistryTest, SizeCountsInstrumentsAndProbes) {
  MetricsRegistry registry;
  registry.counter("a");
  registry.gauge("b");
  registry.histogram("c", {1.0});
  registry.register_probe("d", [] { return 4.0; });
  registry.register_probe("d", [] { return 5.0; });  // replace, not add
  EXPECT_EQ(registry.size(), 4u);
}

TEST(RegistryTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.counter(labeled("requests_total", {{"agent", "1"}})).inc(3);
  registry.gauge("load").set(0.5);
  registry.register_probe("probe_val", [] { return 7.0; });
  auto& h = registry.histogram("lat_us", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("requests_total{agent=\"1\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("load 0.5"), std::string::npos) << text;
  EXPECT_NE(text.find("probe_val 7"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us_count 2"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us_sum 55"), std::string::npos) << text;
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos) << text;
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos) << text;
}

TEST(RegistryTest, JsonFormat) {
  MetricsRegistry registry;
  registry.counter("c").inc(2);
  registry.gauge("g").set(1.5);
  registry.register_probe("p", [] { return 9.0; });
  registry.histogram("h", {10.0}).observe(4.0);

  const std::string json = registry.json(/*t_us=*/1234);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"t_us\":1234"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;

  // No timestamp member unless requested.
  EXPECT_EQ(registry.json().find("t_us"), std::string::npos);
}

TEST(RegistryTest, ProbesEvaluatedAtExportTime) {
  MetricsRegistry registry;
  int calls = 0;
  registry.register_probe("live", [&calls] { return static_cast<double>(++calls); });
  EXPECT_EQ(calls, 0);  // registration alone never runs the probe
  (void)registry.json();
  EXPECT_EQ(calls, 1);
  (void)registry.prometheus_text();
  EXPECT_EQ(calls, 2);
}

// ----------------------------------------------------------- trace ring --

TEST(TraceRingTest, KeepsMostRecentAndAggregatesAll) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.add({/*cycle=*/i, /*updater_us=*/static_cast<double>(i), 0.0, 0.0, 0.0, 0, 0});
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  const auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_EQ(kept.front().cycle, 6);  // oldest retained
  EXPECT_EQ(kept.back().cycle, 9);   // most recent
  // Stats cover all 10 cycles, not just the retained window.
  EXPECT_EQ(ring.updater_us().count(), 10u);
  EXPECT_DOUBLE_EQ(ring.updater_us().mean(), 4.5);
  EXPECT_DOUBLE_EQ(ring.updater_us().max(), 9.0);
}

TEST(TraceRingTest, EmptyRing) {
  TraceRing ring(8);
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.updater_us().count(), 0u);
}

// ---------------------------------------------------------- concurrency --

TEST(ConcurrencyTest, CountersAndHistogramsUnderContention) {
  // Exercised under TSan by tools/check.sh thread: concurrent inc/observe
  // must be race-free, and no increment may be lost.
  MetricsRegistry registry;
  Counter& counter = registry.counter("contended");
  Histogram& histogram = registry.histogram("contended_lat", exponential_bounds(1.0, 2.0, 10));
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.inc();
        histogram.observe(static_cast<double>((t * 37 + i) % 600));
      }
    });
  }
  // Concurrent reader: exports while writers are live must be safe.
  std::atomic<bool> stop{false};
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) (void)registry.json();
  });
  for (auto& thread : threads) thread.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(histogram.count(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace flexran::obs
